// The collection store (src/store/): metadata interning/TTL/soft-delete
// semantics, TCAM-pushed tag-band filtering bit-identical to brute-force
// post-filtering on every factory backend, selectivity-based routing,
// collection snapshot round-trips (v4 store block), and the
// CollectionManager fleet - manifest save/load identity under interleaved
// add/erase/TTL-expiry, shared-pool admission control, and per-collection
// filtered-query stats.
#include "store/manager.hpp"

#include "serve/snapshot.hpp"
#include "store/collection.hpp"
#include "store/metadata.hpp"
#include "store/predicate.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcam::store {
namespace {

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.5 + (i % 3) * 0.3, 0.8));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 4);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 4)));
  }
  return data;
}

void expect_identical(const search::QueryResult& got, const search::QueryResult& want,
                      const std::string& context) {
  EXPECT_EQ(got.label, want.label) << context;
  ASSERT_EQ(got.neighbors.size(), want.neighbors.size()) << context;
  for (std::size_t n = 0; n < got.neighbors.size(); ++n) {
    EXPECT_EQ(got.neighbors[n].index, want.neighbors[n].index) << context << " rank " << n;
    EXPECT_EQ(got.neighbors[n].distance, want.neighbors[n].distance)
        << context << " rank " << n;
  }
}

/// Per-row tags: every row carries "all" and its class tag; rows 0-3 also
/// carry "rare" (a ~8% predicate over 48 rows).
std::vector<std::vector<std::string>> make_tags(std::size_t n) {
  std::vector<std::vector<std::string>> tags(n);
  for (std::size_t r = 0; r < n; ++r) {
    tags[r] = {"all", "class=" + std::to_string(r % 4)};
    if (r < 4) tags[r].push_back("rare");
  }
  return tags;
}

std::string unique_dir(const std::string& stem) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("mcam_" + stem);
  std::filesystem::remove_all(dir);
  return dir.string();
}

// ---------------------------------------------------------------------------
// MetadataStore unit semantics
// ---------------------------------------------------------------------------

TEST(MetadataStore, InterningPredicatesAndErase) {
  MetadataStore meta;
  const std::vector<std::string> ab = {"a", "b", "a"};  // Duplicate collapses.
  const std::vector<std::string> b = {"b"};
  EXPECT_EQ(meta.append(ab), 0u);
  EXPECT_EQ(meta.append(b), 1u);
  EXPECT_EQ(meta.append({}), 2u);
  EXPECT_EQ(meta.tag_count(), 2u);
  EXPECT_EQ(meta.row(0).tags.size(), 2u);

  EXPECT_TRUE(meta.matches(0, Predicate::tag("a").and_tag("b")));
  EXPECT_FALSE(meta.matches(1, Predicate::tag("a")));
  EXPECT_FALSE(meta.matches(2, Predicate::tag("a")));
  EXPECT_TRUE(meta.matches(2, Predicate{}));  // Empty matches every live row.
  EXPECT_FALSE(meta.matches(0, Predicate::tag("never-interned")));  // False, no throw.
  EXPECT_EQ(meta.matching_ids(Predicate::tag("b")),
            (std::vector<std::size_t>{0, 1}));

  // Erase contract mirror: false when repeated, out_of_range when unknown.
  EXPECT_TRUE(meta.mark_erased(1));
  EXPECT_FALSE(meta.mark_erased(1));
  EXPECT_THROW((void)meta.mark_erased(3), std::out_of_range);
  EXPECT_EQ(meta.live(), 2u);
  EXPECT_FALSE(meta.matches(1, Predicate::tag("b")));  // Erased rows never match.

  // Rollback hook: truncate drops trailing records but keeps the interner.
  meta.truncate(2);
  EXPECT_EQ(meta.rows(), 2u);
  EXPECT_EQ(meta.tag_count(), 2u);
  EXPECT_THROW(meta.truncate(5), std::invalid_argument);
}

TEST(MetadataStore, TtlAndBandQueries) {
  MetadataStore meta;
  const std::vector<std::string> t = {"t"};
  (void)meta.append(t, 0);    // Never expires.
  (void)meta.append(t, 5);
  (void)meta.append(t, 10);
  EXPECT_TRUE(meta.expired_ids(4).empty());
  EXPECT_EQ(meta.expired_ids(5), (std::vector<std::size_t>{1}));
  EXPECT_EQ(meta.expired_ids(99), (std::vector<std::size_t>{1, 2}));

  // Band mapping: a row's bitmap covers its tags' slots; a predicate over
  // a never-interned tag has no band query at all.
  const std::size_t width = 16;
  const auto bits = meta.band_bits(0, width);
  EXPECT_EQ(bits.size(), width);
  EXPECT_EQ(bits[band_slot(0, width)], 1);
  const auto query = meta.band_query(Predicate::tag("t"), width);
  ASSERT_TRUE(query.has_value());
  EXPECT_EQ(*query, bits);
  EXPECT_FALSE(meta.band_query(Predicate::tag("missing"), width).has_value());
  EXPECT_THROW((void)band_slot(0, 0), std::invalid_argument);
}

TEST(MetadataStore, SaveLoadRoundTripIsExact) {
  MetadataStore meta;
  const std::vector<std::string> xy = {"x", "y"};
  const std::vector<std::string> y = {"y"};
  (void)meta.append(xy, 7);
  (void)meta.append(y, 0);
  (void)meta.append({}, 3);
  (void)meta.mark_erased(1);

  serve::io::Writer out;
  meta.save(out);
  serve::io::Reader in(out.buffer());
  MetadataStore restored;
  restored.load(in);
  in.expect_end();

  EXPECT_EQ(restored.rows(), meta.rows());
  EXPECT_EQ(restored.live(), meta.live());
  EXPECT_EQ(restored.tag_count(), meta.tag_count());
  for (std::size_t id = 0; id < meta.rows(); ++id) {
    EXPECT_EQ(restored.row(id).tags, meta.row(id).tags) << id;
    EXPECT_EQ(restored.row(id).expires_at, meta.row(id).expires_at) << id;
    EXPECT_EQ(restored.row(id).erased, meta.row(id).erased) << id;
  }
  EXPECT_EQ(restored.find_tag("y"), meta.find_tag("y"));
}

// ---------------------------------------------------------------------------
// Collection: TCAM-pushed filtering vs brute-force post-filtering
// ---------------------------------------------------------------------------

// The fine backends the band identity is pinned on - software metrics,
// the paper's MCAM, the Hamming TCAM, and a sharded tiling.
const std::vector<std::string> kFineBackends = {
    "euclidean",
    "cosine",
    "manhattan",
    "mcam3",
    "tcam-lsh",
    "sharded-mcam3:bank_rows=32,shard_workers=1",
};

TEST(CollectionFiltering, BandPathBitIdenticalToPostFilterOnEveryBackend) {
  const Data data = make_data(48, 8, 6, 611);
  const auto tags = make_tags(data.rows.size());
  search::EngineConfig base;
  base.num_features = 8;
  for (const std::string& fine : kFineBackends) {
    SCOPED_TRACE(fine);
    // candidate_factor = 64 >= row count: the coarse nomination covers
    // every eligible row, which is the documented bit-exactness regime.
    Collection collection{
        "c", "refine:coarse_bits=32,tag_bits=24,candidate_factor=64,filter=band,fine=" + fine,
        base};
    collection.add(data.rows, data.labels, tags);
    ASSERT_TRUE(collection.band_capable());

    for (const std::string& tag : {std::string("rare"), std::string("class=1")}) {
      const Predicate predicate = Predicate::tag(tag);
      const std::vector<std::size_t> matching =
          collection.metadata().matching_ids(predicate);
      ASSERT_FALSE(matching.empty());
      for (const auto& q : data.queries) {
        for (std::size_t k : {std::size_t{1}, std::size_t{5}}) {
          const CollectionQueryResult got = collection.query(q, k, predicate);
          EXPECT_EQ(got.path, FilterPath::kBand);
          const search::QueryResult want =
              collection.engine().query_subset(q, matching, k);
          expect_identical(got.result, want, tag + " k=" + std::to_string(k));
          // The band excluded every non-matching row in-array: at
          // tag_bits = 24 the six tags of make_tags land on distinct band
          // slots (the splitmix64 mapping is a frozen snapshot contract),
          // so there are no Bloom collisions and eligible == matching.
          EXPECT_EQ(got.result.telemetry.filtered_out,
                    data.rows.size() - matching.size())
              << tag;
          EXPECT_EQ(got.result.telemetry.fine_candidates, matching.size()) << tag;
        }
      }
    }
  }
}

TEST(CollectionFiltering, AutoPolicyRoutesBySelectivity) {
  const Data data = make_data(48, 8, 3, 613);
  const auto tags = make_tags(data.rows.size());
  search::EngineConfig base;
  base.num_features = 8;
  Collection collection{
      "c", "refine:coarse_bits=32,tag_bits=24,candidate_factor=64,fine=euclidean", base};
  ASSERT_EQ(collection.filter_policy(), FilterPolicy::kAuto);
  collection.add(data.rows, data.labels, tags);

  // "rare" matches 4/48 (~8%) -> pushed into the band; "all" matches
  // every row (100% > the 25% default limit) -> post-filter.
  const CollectionQueryResult rare = collection.query(data.queries[0], 3,
                                                      Predicate::tag("rare"));
  EXPECT_EQ(rare.path, FilterPath::kBand);
  EXPECT_NEAR(rare.selectivity, 4.0 / 48.0, 1e-12);

  const CollectionQueryResult all = collection.query(data.queries[0], 3,
                                                     Predicate::tag("all"));
  EXPECT_EQ(all.path, FilterPath::kPostFilter);
  EXPECT_DOUBLE_EQ(all.selectivity, 1.0);
  EXPECT_EQ(all.result.telemetry.filtered_out, 0u);  // Nothing was excluded.

  // Both paths agree with the brute-force subset answer.
  const auto matching = collection.metadata().matching_ids(Predicate::tag("rare"));
  expect_identical(rare.result,
                   collection.engine().query_subset(data.queries[0], matching, 3),
                   "auto band");

  // An unfiltered query takes neither filter path.
  const CollectionQueryResult plain = collection.query(data.queries[0], 3);
  EXPECT_EQ(plain.path, FilterPath::kNone);
  EXPECT_EQ(plain.result.telemetry.filtered_out, 0u);
  expect_identical(plain.result, collection.engine().query_one(data.queries[0], 3),
                   "unfiltered");
}

TEST(CollectionFiltering, PostPolicyAndBandlessEnginesAlwaysPostFilter) {
  const Data data = make_data(32, 6, 2, 617);
  const auto tags = make_tags(data.rows.size());
  search::EngineConfig base;
  base.num_features = 6;

  // filter=post forces the subset path even on a band-capable engine.
  Collection forced{
      "p", "refine:coarse_bits=24,tag_bits=16,candidate_factor=64,filter=post,fine=euclidean",
      base};
  forced.add(data.rows, data.labels, tags);
  const CollectionQueryResult via_post = forced.query(data.queries[0], 4,
                                                      Predicate::tag("rare"));
  EXPECT_EQ(via_post.path, FilterPath::kPostFilter);
  EXPECT_EQ(via_post.result.telemetry.filtered_out, data.rows.size() - 4);

  // A band-less engine (plain software scan) serves filters via the
  // subset path with identical answers.
  Collection flat{"f", "euclidean", base};
  flat.add(data.rows, data.labels, tags);
  EXPECT_FALSE(flat.band_capable());
  const CollectionQueryResult via_flat = flat.query(data.queries[0], 4,
                                                    Predicate::tag("rare"));
  EXPECT_EQ(via_flat.path, FilterPath::kPostFilter);
  const auto matching = flat.metadata().matching_ids(Predicate::tag("rare"));
  expect_identical(via_flat.result,
                   flat.engine().query_subset(data.queries[0], matching, 4), "flat");

  EXPECT_THROW(Collection("x", "euclidean:filter=nonsense", base),
               std::invalid_argument);
}

TEST(CollectionFiltering, NoMatchingRowThrows) {
  const Data data = make_data(16, 6, 1, 619);
  const auto tags = make_tags(data.rows.size());
  search::EngineConfig base;
  base.num_features = 6;
  Collection collection{
      "c", "refine:coarse_bits=24,tag_bits=16,candidate_factor=64,fine=euclidean", base};
  collection.add(data.rows, data.labels, tags);

  // Never-interned tag and fully-erased tag both mean "no live match".
  EXPECT_THROW((void)collection.query(data.queries[0], 3, Predicate::tag("nope")),
               std::invalid_argument);
  for (std::size_t id = 0; id < 4; ++id) EXPECT_TRUE(collection.erase(id));
  EXPECT_THROW((void)collection.query(data.queries[0], 3, Predicate::tag("rare")),
               std::invalid_argument);
}

TEST(Collection, TtlExpiryEraseAndGeneration) {
  const Data data = make_data(20, 6, 2, 623);
  const auto tags = make_tags(data.rows.size());
  std::vector<std::uint64_t> expires(data.rows.size(), 0);
  for (std::size_t r = 0; r < 5; ++r) expires[r] = 10 + r;  // Ticks 10..14.
  search::EngineConfig base;
  base.num_features = 6;
  Collection collection{
      "c", "refine:coarse_bits=24,tag_bits=16,candidate_factor=64,fine=euclidean", base};
  EXPECT_EQ(collection.generation(), 0u);
  collection.add(data.rows, data.labels, tags, expires);
  EXPECT_EQ(collection.generation(), 1u);

  EXPECT_EQ(collection.expire(9), 0u);   // Nothing due yet.
  EXPECT_EQ(collection.expire(12), 3u);  // Rows 0,1,2.
  EXPECT_EQ(collection.size(), 17u);
  EXPECT_EQ(collection.expire(12), 0u);  // Idempotent at the same tick.
  const std::uint64_t generation = collection.generation();
  EXPECT_EQ(collection.expire(99), 2u);  // Rows 3,4.
  EXPECT_GT(collection.generation(), generation);

  // Expired rows are tombstoned everywhere: erase contract + queries.
  EXPECT_FALSE(collection.erase(0));
  EXPECT_THROW((void)collection.erase(999), std::out_of_range);
  const CollectionQueryResult result =
      collection.query(data.queries[0], 20, Predicate::tag("all"));
  for (const auto& neighbor : result.result.neighbors) {
    EXPECT_GE(neighbor.index, 5u);  // 0..4 expired.
  }
}

TEST(Collection, SnapshotRoundTripRestoresFilteredBehavior) {
  const Data data = make_data(40, 8, 4, 629);
  const auto tags = make_tags(data.rows.size());
  std::vector<std::uint64_t> expires(data.rows.size(), 0);
  expires[7] = 3;
  search::EngineConfig base;
  base.num_features = 8;
  Collection original{
      "prod",
      "refine:coarse_bits=32,tag_bits=24,candidate_factor=64,sig=trained,fine=mcam3",
      base};
  original.add(data.rows, data.labels, tags, expires);
  (void)original.erase(11);
  (void)original.expire(5);

  const std::vector<std::uint8_t> blob = original.snapshot();
  const serve::SnapshotInfo info = serve::inspect(blob);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_TRUE(info.has_store);
  EXPECT_EQ(info.collection, "prod");
  EXPECT_EQ(info.metadata_rows, data.rows.size());
  EXPECT_EQ(info.metadata_tags, original.metadata().tag_count());
  EXPECT_EQ(info.config.tag_bits, 24u);

  const auto restored = Collection::restore(blob);
  EXPECT_EQ(restored->collection_name(), "prod");
  EXPECT_EQ(restored->generation(), original.generation());
  EXPECT_EQ(restored->size(), original.size());
  EXPECT_EQ(restored->metadata().tag_count(), original.metadata().tag_count());
  ASSERT_TRUE(restored->band_capable());

  for (const auto& q : data.queries) {
    expect_identical(restored->query(q, 5).result, original.query(q, 5).result,
                     "unfiltered");
    const CollectionQueryResult a = original.query(q, 5, Predicate::tag("rare"));
    const CollectionQueryResult b = restored->query(q, 5, Predicate::tag("rare"));
    EXPECT_EQ(a.path, b.path);
    expect_identical(b.result, a.result, "filtered");
  }

  // A plain engine snapshot is not a collection.
  auto flat = search::make_index("euclidean", base);
  flat->add(data.rows, data.labels);
  const std::vector<std::uint8_t> engine_blob = serve::save(*flat, "euclidean", base);
  EXPECT_THROW((void)Collection::restore(engine_blob), serve::io::SnapshotError);
}

// ---------------------------------------------------------------------------
// CollectionManager: fleet persistence, admission control, stats
// ---------------------------------------------------------------------------

TEST(CollectionManager, FleetManifestRoundTripUnderInterleavedMutations) {
  const Data data = make_data(48, 8, 4, 641);
  const auto tags = make_tags(data.rows.size());
  std::vector<std::uint64_t> expires(data.rows.size(), 0);
  for (std::size_t r = 8; r < 12; ++r) expires[r] = 4;
  search::EngineConfig base;
  base.num_features = 8;

  ManagerConfig config;
  config.workers = 2;
  CollectionManager manager{config};
  manager.create_collection(
      "alpha", "refine:coarse_bits=32,tag_bits=24,candidate_factor=64,fine=euclidean",
      base);
  manager.create_collection("beta", "sharded-mcam3:bank_rows=32,shard_workers=1", base);
  manager.create_collection("gamma", "euclidean", base);
  EXPECT_THROW(manager.create_collection("alpha", "euclidean", base),
               std::invalid_argument);
  EXPECT_EQ(manager.collection_names(),
            (std::vector<std::string>{"alpha", "beta", "gamma"}));

  // Interleaved history: tagged adds with TTLs, erases, a TTL sweep, and
  // more adds after the sweep.
  manager.add("alpha", data.rows, data.labels, tags, expires);
  manager.add("beta", std::span(data.rows).subspan(0, 32),
              std::span(data.labels).subspan(0, 32));
  manager.add("gamma", std::span(data.rows).subspan(0, 16),
              std::span(data.labels).subspan(0, 16));
  EXPECT_TRUE(manager.erase("alpha", 2));
  EXPECT_FALSE(manager.erase("alpha", 2));
  EXPECT_TRUE(manager.erase("beta", 5));
  EXPECT_EQ(manager.expire_all(4), 4u);  // alpha rows 8..11.
  manager.add("gamma", std::span(data.rows).subspan(16, 8),
              std::span(data.labels).subspan(16, 8));
  EXPECT_THROW((void)manager.erase("alpha", 400), std::out_of_range);

  const std::string dir = unique_dir("fleet");
  EXPECT_EQ(manager.save(dir), 3u);

  ManagerConfig reload_config;
  reload_config.workers = 2;
  CollectionManager reloaded{reload_config};
  EXPECT_EQ(reloaded.load(dir), 3u);
  EXPECT_EQ(reloaded.collection_names(), manager.collection_names());
  for (const std::string& name : manager.collection_names()) {
    EXPECT_EQ(reloaded.size(name), manager.size(name)) << name;
    EXPECT_EQ(reloaded.generation(name), manager.generation(name)) << name;
  }

  // Identity: every query - filtered through the band, filtered through
  // the post path, unfiltered on every backend - answers bit-identically.
  for (const auto& q : data.queries) {
    for (const std::string& name : manager.collection_names()) {
      const StoreResponse a = manager.query_one(name, q, 5);
      const StoreResponse b = reloaded.query_one(name, q, 5);
      ASSERT_EQ(a.status, serve::RequestStatus::kOk) << name;
      ASSERT_EQ(b.status, serve::RequestStatus::kOk) << name;
      expect_identical(b.result.result, a.result.result, name);
    }
    for (const std::string& tag : {std::string("rare"), std::string("all")}) {
      const StoreResponse a = manager.query_one("alpha", q, 5, Predicate::tag(tag));
      const StoreResponse b = reloaded.query_one("alpha", q, 5, Predicate::tag(tag));
      ASSERT_EQ(a.status, serve::RequestStatus::kOk);
      ASSERT_EQ(b.status, serve::RequestStatus::kOk);
      EXPECT_EQ(a.result.path, b.result.path) << tag;
      expect_identical(b.result.result, a.result.result, "filtered " + tag);
    }
  }

  // Mutations keep working after restore (the replayed engines accept
  // further adds identically).
  const std::size_t before = reloaded.size("gamma");
  manager.add("gamma", std::span(data.rows).subspan(24, 4),
              std::span(data.labels).subspan(24, 4));
  reloaded.add("gamma", std::span(data.rows).subspan(24, 4),
               std::span(data.labels).subspan(24, 4));
  EXPECT_EQ(reloaded.size("gamma"), before + 4);
  const StoreResponse a = manager.query_one("gamma", data.queries[0], 3);
  const StoreResponse b = reloaded.query_one("gamma", data.queries[0], 3);
  expect_identical(b.result.result, a.result.result, "post-restore add");

  // Loading into a manager that already has one of the names refuses.
  CollectionManager conflicted;
  conflicted.create_collection("alpha", "euclidean", base);
  EXPECT_THROW((void)conflicted.load(dir), std::invalid_argument);

  std::filesystem::remove_all(dir);
}

TEST(CollectionManager, AdmissionControlRejectsWithStatus) {
  const Data data = make_data(512, 16, 4, 653);
  search::EngineConfig base;
  base.num_features = 16;
  ManagerConfig config;
  config.workers = 1;
  config.collection_queue_cap = 1;  // One in-flight request per tenant.
  CollectionManager manager{config};
  manager.create_collection("tenant", "mcam3", base);
  manager.add("tenant", data.rows, data.labels);

  std::vector<std::future<StoreResponse>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(manager.submit("tenant", data.queries[i % 4], 5));
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (auto& f : futures) {
    const StoreResponse response = f.get();
    if (response.status == serve::RequestStatus::kOk) {
      ++ok;
      EXPECT_FALSE(response.result.result.neighbors.empty());
    } else {
      ASSERT_EQ(response.status, serve::RequestStatus::kRejected);
      ++rejected;
    }
  }
  // A 1-deep per-tenant cap against an instant submit loop must reject;
  // every outcome is reported, nothing is dropped.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(ok + rejected, 64u);
  const serve::ServiceStats stats = manager.stats("tenant");
  EXPECT_EQ(stats.accepted, ok);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_LE(stats.queue_depth_peak, 1u);

  // Unknown names throw at submit; dropped collections free the name and
  // late submits to them throw too.
  EXPECT_THROW((void)manager.submit("nobody", data.queries[0], 1),
               std::invalid_argument);
  EXPECT_TRUE(manager.drop_collection("tenant"));
  EXPECT_FALSE(manager.drop_collection("tenant"));
  EXPECT_FALSE(manager.contains("tenant"));
  EXPECT_THROW((void)manager.submit("tenant", data.queries[0], 1),
               std::invalid_argument);

  manager.stop();
}

TEST(CollectionManager, StatsAggregateFilteredQueries) {
  const Data data = make_data(48, 8, 4, 659);
  const auto tags = make_tags(data.rows.size());
  search::EngineConfig base;
  base.num_features = 8;
  ManagerConfig config;
  config.workers = 1;
  CollectionManager manager{config};
  manager.create_collection(
      "docs", "refine:coarse_bits=32,tag_bits=24,candidate_factor=64,fine=euclidean",
      base);
  manager.add("docs", data.rows, data.labels, tags);

  // 2 band-routed (rare, ~8%), 1 post-routed (all, 100%), 1 unfiltered.
  ASSERT_EQ(manager.query_one("docs", data.queries[0], 3, Predicate::tag("rare")).status,
            serve::RequestStatus::kOk);
  ASSERT_EQ(manager.query_one("docs", data.queries[1], 3, Predicate::tag("rare")).status,
            serve::RequestStatus::kOk);
  ASSERT_EQ(manager.query_one("docs", data.queries[2], 3, Predicate::tag("all")).status,
            serve::RequestStatus::kOk);
  ASSERT_EQ(manager.query_one("docs", data.queries[3], 3).status,
            serve::RequestStatus::kOk);

  const serve::ServiceStats stats = manager.stats("docs");
  EXPECT_EQ(stats.completed, 4u);
  EXPECT_EQ(stats.filtered_queries, 3u);
  EXPECT_EQ(stats.band_queries, 2u);
  EXPECT_EQ(stats.post_filter_queries, 1u);
  const double expected_mean = (4.0 / 48.0 + 4.0 / 48.0 + 1.0) / 3.0;
  EXPECT_NEAR(stats.filter_selectivity_mean, expected_mean, 1e-12);
  EXPECT_GE(stats.latency_p95_ms, stats.latency_p50_ms);
  EXPECT_GT(stats.throughput_qps, 0.0);
  EXPECT_THROW((void)manager.stats("nobody"), std::invalid_argument);

  // A failed query (unknown predicate tag -> invalid_argument inside the
  // worker) resolves kFailed with the message and counts as failed.
  const StoreResponse failed =
      manager.query_one("docs", data.queries[0], 3, Predicate::tag("nope"));
  EXPECT_EQ(failed.status, serve::RequestStatus::kFailed);
  EXPECT_FALSE(failed.error.empty());
  EXPECT_EQ(manager.stats("docs").failed, 1u);
}

}  // namespace
}  // namespace mcam::store
