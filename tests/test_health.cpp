// Online health monitoring (obs/health): the cam-layer readback hooks
// (row_readback / row_health vs the programmed levels), the drift_sigma
// spec key and inject_drift model, scrub_index's walk over every engine
// shape, RecallCanary scoring semantics against a hand-built ground
// truth, HealthMonitor alarm edges, and the end-to-end acceptance gate:
// drift injected mid-run makes the online recall estimate drop and fires
// both alarm kinds within a bounded number of canary/scrub cycles, while
// a clean run stays all-quiet. Under -DMCAM_OBS_DISABLED the always-
// compiled device-scrub helpers still run and the canary/monitor stubs
// are asserted inert (no sampling, empty reports).
#include "cam/array.hpp"
#include "cam/tcam.hpp"
#include "obs/exporters.hpp"
#include "obs/health/health.hpp"
#include "obs/metrics.hpp"
#include "search/factory.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "store/manager.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

namespace mcam {
namespace {

using obs::health::BankHealth;
using obs::health::CanaryOptions;
using obs::health::CanaryReport;
using obs::health::HealthReport;
using obs::health::MonitorOptions;

/// Labeled Gaussian blobs, one blob per class (the test_index_api idiom).
struct Blobs {
  std::vector<std::vector<float>> train;
  std::vector<int> train_labels;
  std::vector<std::vector<float>> queries;
};

Blobs make_blobs(std::size_t per_class, std::size_t classes, std::size_t dim,
                 double spread, std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  const auto sample = [&](std::size_t cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(static_cast<double>(cls) * 2.0 +
                                               static_cast<double>(i % 3) * 0.4,
                                           spread));
    }
    return v;
  };
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      blobs.train.push_back(sample(cls));
      blobs.train_labels.push_back(static_cast<int>(cls));
      blobs.queries.push_back(sample(cls));
    }
  }
  return blobs;
}

const BankHealth* find_bank(const std::vector<BankHealth>& banks, const std::string& name) {
  for (const BankHealth& bank : banks) {
    if (bank.bank == name) return &bank;
  }
  return nullptr;
}

std::size_t total_mismatches(const std::vector<BankHealth>& banks) {
  std::size_t total = 0;
  for (const BankHealth& bank : banks) total += bank.mismatched_cells;
  return total;
}

// --- Cam-layer readback hooks (always compiled) ----------------------------

TEST(RowReadback, NoiselessMcamReadsBackItsProgrammedLevels) {
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{2};
  cam::McamArray array{config};
  const std::vector<std::uint16_t> levels{0, 1, 2, 3, 1};
  const std::size_t row = array.add_row(levels);
  EXPECT_EQ(array.row_readback(row), levels);
  EXPECT_EQ(array.row_readback(row), array.row_levels(row));
  const cam::RowHealth health = array.row_health(row);
  EXPECT_EQ(health.cells, levels.size());
  EXPECT_EQ(health.mismatched, 0u);
  EXPECT_EQ(health.faulty, 0u);
  EXPECT_DOUBLE_EQ(health.max_abs_shift_v, 0.0);
  EXPECT_THROW((void)array.row_readback(99), std::out_of_range);
  EXPECT_THROW((void)array.row_health(99), std::out_of_range);
}

TEST(RowReadback, AppliedDriftFlipsCellsAndRaisesShifts) {
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{2};
  cam::McamArray array{config};
  std::vector<std::vector<std::uint16_t>> rows(8, std::vector<std::uint16_t>(16));
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      rows[r][c] = static_cast<std::uint16_t>((r + c) % 4);
    }
  }
  array.program(rows);
  const std::size_t perturbed = array.apply_drift(0.5, 7);
  EXPECT_EQ(perturbed, rows.size() * rows.front().size());
  std::size_t mismatched = 0;
  double max_shift = 0.0;
  for (std::size_t r = 0; r < rows.size(); ++r) {
    EXPECT_EQ(array.row_levels(r), rows[r]) << "drift must not rewrite targets";
    const cam::RowHealth health = array.row_health(r);
    mismatched += health.mismatched;
    max_shift = std::max(max_shift, health.max_abs_shift_v);
  }
  EXPECT_GT(mismatched, 0u) << "sigma=0.5 V should cross level windows";
  EXPECT_GT(max_shift, 0.0);
  EXPECT_EQ(array.apply_drift(0.0, 7), 0u) << "sigma <= 0 is a no-op";
}

TEST(RowReadback, StuckCellsAreFaultyNotDrifted) {
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{2};
  config.stuck_short_rate = 1.0;  // Every cell faulty.
  cam::McamArray array{config};
  const std::size_t row = array.add_row(std::vector<std::uint16_t>{1, 2, 3});
  const cam::RowHealth health = array.row_health(row);
  EXPECT_EQ(health.faulty, 3u);
  EXPECT_EQ(health.mismatched, 0u) << "faults are excluded from the drift comparison";
}

TEST(RowReadback, NoiselessTcamReadsBackItsTrits) {
  cam::TcamArray array{cam::TcamArrayConfig{}};
  const std::vector<cam::Trit> word{cam::Trit::kZero, cam::Trit::kOne,
                                    cam::Trit::kDontCare, cam::Trit::kOne};
  const std::size_t row = array.add_row(word);
  EXPECT_EQ(array.row_readback(row), word);
  EXPECT_EQ(array.row_health(row).mismatched, 0u);
  const std::size_t perturbed = array.apply_drift(0.6, 11);
  EXPECT_EQ(perturbed, word.size());
  EXPECT_GT(array.row_health(row).max_abs_shift_v, 0.0);
}

// --- drift_sigma spec key --------------------------------------------------

TEST(DriftSpec, DriftSigmaKeyParsesAndRejectsGarbage) {
  EXPECT_DOUBLE_EQ(search::parse_engine_spec("mcam:drift_sigma=0.25").config.drift_sigma,
                   0.25);
  EXPECT_DOUBLE_EQ(search::parse_engine_spec("mcam").config.drift_sigma, 0.0);
  EXPECT_THROW((void)search::parse_engine_spec("mcam:drift_sigma=x"),
               std::invalid_argument);
  try {
    (void)search::parse_engine_spec("mcam:definitely_unknown=1");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("drift_sigma"), std::string::npos)
        << "known-key list should name drift_sigma: " << e.what();
  }
}

// --- scrub_index over the engine shapes (always compiled) ------------------

TEST(ScrubIndex, WalksEveryCamBankAndSkipsSoftware) {
  const Blobs blobs = make_blobs(8, 2, 6, 0.5, 17);
  search::EngineConfig config;
  config.num_features = 6;

  {
    auto software = search::make_index("euclidean", config);
    software->add(blobs.train, blobs.train_labels);
    EXPECT_TRUE(obs::health::scrub_index(*software).empty())
        << "software engines have no cells";
  }
  {
    auto mcam = search::make_index("mcam2", config);
    mcam->add(blobs.train, blobs.train_labels);
    const std::vector<BankHealth> banks = obs::health::scrub_index(*mcam);
    ASSERT_EQ(banks.size(), 1u);
    EXPECT_EQ(banks[0].bank, "mcam");
    EXPECT_EQ(banks[0].rows, blobs.train.size());
    EXPECT_GT(banks[0].cells, 0u);
    EXPECT_EQ(banks[0].mismatched_cells, 0u) << "clean programming scrubs clean";
    EXPECT_DOUBLE_EQ(banks[0].drift_score, 0.0);
  }
  {
    search::EngineConfig two_stage = config;
    two_stage.coarse_bits = 32;
    two_stage.probes = 2;
    two_stage.fine_spec = "mcam2";
    auto refine = search::make_index("refine", two_stage);
    refine->add(blobs.train, blobs.train_labels);
    const std::vector<BankHealth> banks = obs::health::scrub_index(*refine);
    EXPECT_NE(find_bank(banks, "coarse"), nullptr);
    EXPECT_NE(find_bank(banks, "fine/mcam"), nullptr);
  }
  {
    search::EngineConfig sharded = config;
    sharded.bank_rows = 8;
    auto index = search::make_index("sharded-mcam2", sharded);
    index->add(blobs.train, blobs.train_labels);
    const std::vector<BankHealth> banks = obs::health::scrub_index(*index);
    ASSERT_GE(banks.size(), 2u) << "8-row banks over 16 rows must shard";
    EXPECT_NE(find_bank(banks, "bank0/mcam"), nullptr);
    EXPECT_NE(find_bank(banks, "bank1/mcam"), nullptr);
  }
}

TEST(ScrubIndex, DriftSigmaSpecProgramsDriftedCells) {
  const Blobs blobs = make_blobs(12, 2, 6, 0.5, 23);
  search::EngineConfig config;
  config.num_features = 6;
  config.drift_sigma = 0.5;
  auto index = search::make_index("mcam2", config);
  index->add(blobs.train, blobs.train_labels);
  const std::vector<BankHealth> banks = obs::health::scrub_index(*index);
  ASSERT_EQ(banks.size(), 1u);
  EXPECT_GT(banks[0].mismatched_cells, 0u);
  EXPECT_GT(banks[0].drift_score, 0.0);
  EXPECT_GT(banks[0].max_abs_shift_v, 0.0);
}

TEST(ScrubIndex, InjectDriftPerturbsCamAndIgnoresSoftware) {
  const Blobs blobs = make_blobs(8, 2, 6, 0.5, 29);
  search::EngineConfig config;
  config.num_features = 6;
  auto mcam = search::make_index("mcam2", config);
  mcam->add(blobs.train, blobs.train_labels);
  EXPECT_EQ(total_mismatches(obs::health::scrub_index(*mcam)), 0u);
  const std::size_t perturbed = obs::health::inject_drift(*mcam, 0.5, 3);
  EXPECT_GT(perturbed, 0u);
  EXPECT_GT(total_mismatches(obs::health::scrub_index(*mcam)), 0u);

  auto software = search::make_index("euclidean", config);
  software->add(blobs.train, blobs.train_labels);
  EXPECT_EQ(obs::health::inject_drift(*software, 0.5, 3), 0u);
}

// --- Health is not persisted: restore cures drift, inspect reads 0 --------

TEST(HealthPersistence, SnapshotDropsDriftSigmaAndRestoreCuresDrift) {
  const Blobs blobs = make_blobs(8, 2, 6, 0.5, 41);
  search::EngineConfig config;
  config.num_features = 6;
  config.drift_sigma = 0.4;
  auto index = search::make_index("mcam2", config);
  index->add(blobs.train, blobs.train_labels);
  EXPECT_GT(total_mismatches(obs::health::scrub_index(*index)), 0u);

  const std::vector<std::uint8_t> blob = serve::save(*index, "mcam2", config);
  const serve::SnapshotInfo info = serve::inspect(blob);
  EXPECT_DOUBLE_EQ(info.config.drift_sigma, 0.0)
      << "drift_sigma is an operational knob, deliberately not persisted";

  auto restored = serve::load(blob);
  EXPECT_EQ(total_mismatches(obs::health::scrub_index(*restored)), 0u)
      << "restore reprograms the cells, curing drift";
}

#ifndef MCAM_OBS_DISABLED

// --- RecallCanary scoring against a hand-built ground truth ---------------

TEST(RecallCanary, DisabledCanaryNeverSamples) {
  obs::health::RecallCanary off{CanaryOptions{}, nullptr};
  EXPECT_FALSE(off.enabled());
  for (int i = 0; i < 16; ++i) EXPECT_FALSE(off.should_sample());
  const CanaryReport report = off.report();
  EXPECT_EQ(report.sampled, 0u);
  EXPECT_DOUBLE_EQ(report.recall_estimate, 1.0);
}

TEST(RecallCanary, ScoresRecallDisplacementAndMisses) {
  CanaryOptions options;
  options.sample_every = 1;
  options.window = 16;
  options.min_samples = 1;
  options.recall_alarm_below = 0.5;  // Keep the alarm quiet here.
  // Ground truth is always ids {0,1,2} for k=3.
  obs::health::RecallCanary canary{
      options,
      [](std::span<const float>, std::size_t, std::uint64_t)
          -> std::optional<std::vector<std::size_t>> {
        return std::vector<std::size_t>{0, 1, 2};
      }};
  ASSERT_TRUE(canary.enabled());
  EXPECT_TRUE(canary.should_sample());

  // Perfect agreement: recall 1, displacement 0, no misses.
  canary.enqueue({1.0F}, 3, {0, 1, 2}, 0);
  canary.drain();
  CanaryReport report = canary.report();
  EXPECT_EQ(report.executed, 1u);
  EXPECT_DOUBLE_EQ(report.recall_estimate, 1.0);
  EXPECT_DOUBLE_EQ(report.mean_rank_displacement, 0.0);
  EXPECT_EQ(report.coarse_misses, 0u);

  // Served {0,2}: id 1 missed entirely (rank = one past the served end,
  // 2), id 2 displaced by 1 -> recall 2/3, displacement (0+1+1)/3.
  canary.enqueue({1.0F}, 3, {0, 2}, 0);
  canary.drain();
  report = canary.report();
  EXPECT_EQ(report.executed, 2u);
  EXPECT_NEAR(report.recall_estimate, (1.0 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_NEAR(report.mean_rank_displacement, (0.0 + 2.0 / 3.0) / 2.0, 1e-12);
  EXPECT_EQ(report.coarse_misses, 1u);
  EXPECT_EQ(report.sampled, report.executed + report.stale + report.dropped);
}

TEST(RecallCanary, StaleAndDroppedAreCountedNotScored) {
  CanaryOptions options;
  options.sample_every = 1;
  options.min_samples = 1;
  obs::health::RecallCanary canary{
      options,
      [](std::span<const float>, std::size_t k, std::uint64_t generation)
          -> std::optional<std::vector<std::size_t>> {
        if (generation < 5) return std::nullopt;  // The index mutated.
        return std::vector<std::size_t>(k, 0);
      }};
  canary.enqueue({1.0F}, 1, {0}, 0);  // Stale.
  canary.enqueue({1.0F}, 1, {0}, 5);  // Executes.
  canary.drain();
  CanaryReport report = canary.report();
  EXPECT_EQ(report.stale, 1u);
  EXPECT_EQ(report.executed, 1u);
  EXPECT_DOUBLE_EQ(report.recall_estimate, 1.0) << "stale samples never score";

  canary.stop();
  canary.enqueue({1.0F}, 1, {0}, 5);  // Dropped: the canary is stopped.
  report = canary.report();
  EXPECT_EQ(report.dropped, 1u);
  EXPECT_EQ(report.sampled, report.executed + report.stale + report.dropped);
}

TEST(RecallCanary, RecallAlarmIsEdgeTriggeredAndRecovers) {
  CanaryOptions options;
  options.sample_every = 1;
  options.window = 4;  // Small window so recovery flushes the bad samples.
  options.min_samples = 2;
  options.recall_alarm_below = 0.9;
  obs::health::RecallCanary canary{
      options,
      [](std::span<const float>, std::size_t, std::uint64_t)
          -> std::optional<std::vector<std::size_t>> {
        return std::vector<std::size_t>{0};
      }};
  // One bad sample is below min_samples: no alarm yet.
  canary.enqueue({1.0F}, 1, {9}, 0);
  canary.drain();
  EXPECT_EQ(canary.report().alarms, 0u);
  // Second bad sample crosses min_samples with recall 0: one edge.
  canary.enqueue({1.0F}, 1, {9}, 0);
  canary.drain();
  CanaryReport report = canary.report();
  EXPECT_EQ(report.alarms, 1u);
  EXPECT_TRUE(report.alarm_active);
  // Staying bad does not re-fire the edge.
  canary.enqueue({1.0F}, 1, {9}, 0);
  canary.drain();
  EXPECT_EQ(canary.report().alarms, 1u);
  // Four good samples evict the window: the alarm clears.
  for (int i = 0; i < 4; ++i) canary.enqueue({1.0F}, 1, {0}, 0);
  canary.drain();
  report = canary.report();
  EXPECT_FALSE(report.alarm_active);
  EXPECT_DOUBLE_EQ(report.recall_estimate, 1.0);
  EXPECT_EQ(report.alarms, 1u) << "clearing is not an edge";
}

// --- HealthMonitor alarm edges over a synthetic scrub ----------------------

TEST(HealthMonitor, DriftAlarmEdgesOnScoreThreshold) {
  double score = 0.0;
  MonitorOptions options;
  options.drift_alarm_above = 0.02;
  obs::health::HealthMonitor monitor{options, [&score] {
                                      BankHealth bank;
                                      bank.bank = "mcam";
                                      bank.rows = 1;
                                      bank.cells = 100;
                                      bank.mismatched_cells =
                                          static_cast<std::size_t>(score * 100.0);
                                      bank.drift_score = score;
                                      return std::vector<BankHealth>{bank};
                                    }};
  (void)monitor.scrub_now();
  HealthReport report = monitor.report();
  EXPECT_EQ(report.scrubs, 1u);
  EXPECT_EQ(report.drift_alarms, 0u);
  EXPECT_FALSE(report.drift_alarm_active);

  score = 0.5;
  (void)monitor.scrub_now();
  (void)monitor.scrub_now();  // Still over threshold: no second edge.
  report = monitor.report();
  EXPECT_EQ(report.scrubs, 3u);
  EXPECT_EQ(report.drift_alarms, 1u);
  EXPECT_TRUE(report.drift_alarm_active);
  ASSERT_EQ(report.banks.size(), 1u);
  EXPECT_DOUBLE_EQ(report.banks[0].drift_score, 0.5);

  score = 0.0;
  (void)monitor.scrub_now();
  report = monitor.report();
  EXPECT_EQ(report.drift_alarms, 1u);
  EXPECT_FALSE(report.drift_alarm_active);
}

TEST(HealthMonitor, PeriodicWorkerScrubsWithoutExplicitCalls) {
  MonitorOptions options;
  options.scrub_period = std::chrono::milliseconds{1};
  obs::health::HealthMonitor monitor{options, [] { return std::vector<BankHealth>{}; }};
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{5};
  while (monitor.report().scrubs == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  monitor.stop();
  EXPECT_GT(monitor.report().scrubs, 0u);
}

// --- End-to-end acceptance: drift detection through QueryService -----------

TEST(HealthEndToEnd, InjectedDriftDropsRecallAndFiresAlarms) {
  const Blobs blobs = make_blobs(24, 3, 8, 0.5, 67);
  search::EngineConfig config;
  config.num_features = 8;
  config.coarse_bits = 64;
  config.probes = 4;
  config.candidate_factor = 8;
  config.fine_spec = "euclidean";  // Exact fine stage: drift hits only coarse.
  auto index = search::make_index("refine", config);
  index->add(blobs.train, blobs.train_labels);

  serve::QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.cache_capacity = 0;  // Every query reaches the engine.
  service_config.canary.sample_every = 1;
  service_config.canary.window = 64;
  service_config.canary.min_samples = 4;
  // The alarm line sits below the clean operating point (~0.9 recall on
  // this workload) and well above what a drifted coarse stage delivers,
  // so clean stays quiet and drift must trip it.
  service_config.canary.recall_alarm_below = 0.75;
  serve::QueryService service{*index, service_config};

  // Clean phase: all quiet.
  for (const auto& q : blobs.queries) {
    ASSERT_EQ(service.query_one(q, 3).status, serve::RequestStatus::kOk);
  }
  service.canary_drain();
  const CanaryReport clean = service.canary_report();
  EXPECT_EQ(clean.executed, blobs.queries.size());
  EXPECT_GE(clean.recall_estimate, 0.85) << "clean coarse stage should nominate well";
  EXPECT_EQ(clean.alarms, 0u);
  (void)service.scrub_health();
  const HealthReport clean_health = service.health_report();
  EXPECT_EQ(clean_health.drift_alarms, 0u);
  EXPECT_EQ(total_mismatches(clean_health.banks), 0u);

  // Drift the coarse TCAM mid-run; detection must follow within one scrub
  // and one canary window.
  ASSERT_GT(service.inject_drift(0.6, 13), 0u);
  (void)service.scrub_health();
  const HealthReport drifted_health = service.health_report();
  EXPECT_GE(drifted_health.drift_alarms, 1u);
  EXPECT_TRUE(drifted_health.drift_alarm_active);
  EXPECT_GT(total_mismatches(drifted_health.banks), 0u);

  for (int round = 0; round < 3; ++round) {
    for (const auto& q : blobs.queries) {
      ASSERT_EQ(service.query_one(q, 3).status, serve::RequestStatus::kOk);
    }
  }
  service.canary_drain();
  const CanaryReport drifted = service.canary_report();
  EXPECT_LT(drifted.recall_estimate, service_config.canary.recall_alarm_below)
      << "a sigma=0.6 V coarse drift must degrade nomination";
  EXPECT_GT(drifted.coarse_misses, 0u);
  EXPECT_EQ(drifted.sampled, drifted.executed + drifted.stale + drifted.dropped);
  EXPECT_GE(drifted.alarms, 1u);
  EXPECT_TRUE(drifted.alarm_active);

  // The SLO instruments made it into the global registry.
  bool recall_gauge = false;
  bool alarm_counter = false;
  const obs::MetricsSnapshot snapshot = obs::snapshot();
  for (const obs::GaugeSample& sample : snapshot.gauges) {
    if (sample.name == "mcam_health_recall_estimate") recall_gauge = true;
  }
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.name == "mcam_health_canary_total") alarm_counter = true;
  }
  EXPECT_TRUE(recall_gauge);
  EXPECT_TRUE(alarm_counter);

  const std::string json = obs::to_json(service.health_report());
  EXPECT_NE(json.find("\"recall_estimate\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"drift_alarms\":"), std::string::npos) << json;
}

TEST(HealthEndToEnd, CollectionManagerCanariesAndScrubsPerCollection) {
  const Blobs blobs = make_blobs(10, 2, 6, 0.5, 71);
  store::ManagerConfig config;
  config.canary.sample_every = 1;
  config.canary.min_samples = 1;
  store::CollectionManager manager{config};
  manager.create_collection("health_c1", "mcam2");
  (void)manager.add("health_c1", blobs.train, blobs.train_labels);
  for (const auto& q : blobs.queries) {
    ASSERT_EQ(manager.query_one("health_c1", q, 2).status, serve::RequestStatus::kOk);
  }
  manager.canary_drain("health_c1");
  const CanaryReport report = manager.canary_report("health_c1");
  EXPECT_EQ(report.executed, blobs.queries.size());
  EXPECT_EQ(report.sampled, report.executed + report.stale + report.dropped);

  EXPECT_EQ(total_mismatches(manager.scrub_collection("health_c1")), 0u);
  ASSERT_GT(manager.inject_drift("health_c1", 0.5, 5), 0u);
  EXPECT_GT(total_mismatches(manager.scrub_collection("health_c1")), 0u);
  EXPECT_GE(manager.health_report("health_c1").drift_alarms, 1u);

  // Mutating after injection marks in-flight canaries stale, never wrong:
  // the generation bump from inject_drift means a pre-drift sample would
  // not score against post-drift ground truth.
  EXPECT_TRUE(manager.drop_collection("health_c1"));
  EXPECT_THROW((void)manager.canary_report("health_c1"), std::invalid_argument);
}

#else  // MCAM_OBS_DISABLED

// --- Stub inertness: health code compiles away, serving still works --------

TEST(HealthDisabled, CanaryAndMonitorStubsAreInert) {
  obs::health::RecallCanary canary{CanaryOptions{}, nullptr};
  EXPECT_FALSE(canary.enabled());
  EXPECT_FALSE(canary.should_sample());
  canary.enqueue({1.0F}, 1, {0}, 0);
  canary.drain();
  const CanaryReport report = canary.report();
  EXPECT_EQ(report.sampled, 0u);
  EXPECT_EQ(report.executed, 0u);

  obs::health::HealthMonitor monitor{MonitorOptions{}, nullptr};
  EXPECT_TRUE(monitor.scrub_now().empty());
  const HealthReport health = monitor.report();
  EXPECT_EQ(health.scrubs, 0u);
  EXPECT_EQ(health.drift_alarms, 0u);
}

TEST(HealthDisabled, ServiceHealthSurfaceIsZeroedButServing) {
  const Blobs blobs = make_blobs(8, 2, 6, 0.5, 83);
  search::EngineConfig config;
  config.num_features = 6;
  auto index = search::make_index("mcam2", config);
  index->add(blobs.train, blobs.train_labels);
  serve::QueryServiceConfig service_config;
  service_config.canary.sample_every = 1;  // Ignored by the stubs.
  serve::QueryService service{*index, service_config};
  for (const auto& q : blobs.queries) {
    ASSERT_EQ(service.query_one(q, 2).status, serve::RequestStatus::kOk);
  }
  service.canary_drain();
  EXPECT_EQ(service.canary_report().sampled, 0u);
  EXPECT_EQ(service.health_report().scrubs, 0u);
  EXPECT_TRUE(service.scrub_health().empty()) << "the monitor stub never scrubs";
  // The pure device-scrub helpers still work (device model, not obs).
  EXPECT_FALSE(obs::health::scrub_index(*index).empty());
  EXPECT_GT(service.inject_drift(0.5, 3), 0u);
}

#endif  // MCAM_OBS_DISABLED

}  // namespace
}  // namespace mcam
