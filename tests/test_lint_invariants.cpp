// Meta-tests for the static lint layer (scripts/check_invariants.py):
// the live tree must be clean, a seeded-violation tree must fail with
// every rule reported, and the documented annotation escapes must work.
// MCAM_SOURCE_DIR is injected by CMake; python3 is a build prerequisite.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <sys/wait.h>

namespace {

namespace fs = std::filesystem;

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run_command(const std::string& command) {
  CommandResult result;
  const std::string full = command + " 2>&1";
  FILE* pipe = popen(full.c_str(), "r");
  if (pipe == nullptr) return result;
  char buffer[512];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    result.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) result.exit_code = WEXITSTATUS(status);
  return result;
}

std::string checker_path() {
  return std::string(MCAM_SOURCE_DIR) + "/scripts/check_invariants.py";
}

CommandResult run_checker(const fs::path& root) {
  return run_command("python3 '" + checker_path() + "' --root '" + root.string() + "'");
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << content;
  ASSERT_TRUE(out.good()) << path;
}

/// Scratch tree, removed on destruction.
struct TempTree {
  fs::path root;
  explicit TempTree(const char* name)
      : root(fs::temp_directory_path() / name) {
    fs::remove_all(root);
    fs::create_directories(root);
  }
  ~TempTree() { fs::remove_all(root); }
};

TEST(LintInvariants, LiveTreeIsClean) {
  const CommandResult result = run_checker(fs::path(MCAM_SOURCE_DIR));
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintInvariants, SeededViolationsFailWithEveryRuleReported) {
  TempTree tree("mcam_lint_seeded");
  write_file(tree.root / "src" / "bad.cpp",
             "#include <mutex>\n"
             "#include <atomic>\n"
             "struct S {\n"
             "  std::mutex undocumented_mutex;\n"
             "  int* leak() { return new int(7); }\n"
             "  void relax(std::atomic<int>& a) {\n"
             "    a.store(1, std::memory_order_relaxed);\n"
             "  }\n"
             "};\n");
  write_file(tree.root / "src" / "serve" / "snapshot.hpp",
             "constexpr std::uint32_t kSnapshotVersion = 3;\n"
             "constexpr std::uint32_t kMinSnapshotVersion = 4;\n");
  write_file(tree.root / "README.md", "No version documented here.\n");
  write_file(tree.root / ".tsan-suppressions", "race:libfoo.so\n");

  const CommandResult result = run_checker(tree.root);
  EXPECT_EQ(result.exit_code, 1) << result.output;
  EXPECT_NE(result.output.find("[mutex-lock-order]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("[naked-new]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("[relaxed-order]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("[snapshot-version]"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("[tsan-suppression]"), std::string::npos) << result.output;
  // Both snapshot-version failure modes: min > current, and README silent.
  EXPECT_NE(result.output.find("kMinSnapshotVersion"), std::string::npos) << result.output;
  EXPECT_NE(result.output.find("format version 3"), std::string::npos) << result.output;
}

TEST(LintInvariants, AnnotationEscapesAndDocsPass) {
  TempTree tree("mcam_lint_clean");
  write_file(tree.root / "src" / "good.cpp",
             "#include <mutex>\n"
             "#include <atomic>\n"
             "#include <new>\n"  // Preprocessor lines are exempt from naked-new.
             "struct S {\n"
             "  // lock-order: leaf (no lock acquired while held).\n"
             "  std::mutex documented_mutex;\n"
             "  int* leak() { return new int(7); }  // invariant-ok: naked-new (test singleton)\n"
             "  void relax(std::atomic<int>& a) {\n"
             "    a.store(1, std::memory_order_relaxed);  // invariant-ok: relaxed-order (test)\n"
             "  }\n"
             "};\n");
  // src/obs/ may use relaxed without annotation.
  write_file(tree.root / "src" / "obs" / "hot.cpp",
             "#include <atomic>\n"
             "void f(std::atomic<int>& a) { a.store(1, std::memory_order_relaxed); }\n");
  write_file(tree.root / "src" / "serve" / "snapshot.hpp",
             "constexpr std::uint32_t kSnapshotVersion = 4;\n"
             "constexpr std::uint32_t kMinSnapshotVersion = 2;\n");
  write_file(tree.root / "README.md", "Snapshots use format version 4.\n");
  write_file(tree.root / ".tsan-suppressions",
             "# libfoo lazy init races itself; upstream issue #1234\n"
             "race:libfoo.so\n");

  const CommandResult result = run_checker(tree.root);
  EXPECT_EQ(result.exit_code, 0) << result.output;
}

TEST(LintInvariants, SuppressionFileIsEffectivelyEmpty) {
  // The green-by-construction contract: .tsan-suppressions carries no
  // active entries. Deliberate, visible friction - adding the first one
  // means updating this test alongside its justification comment.
  std::ifstream in(std::string(MCAM_SOURCE_DIR) + "/.tsan-suppressions");
  ASSERT_TRUE(in.good());
  std::string line;
  while (std::getline(in, line)) {
    const auto start = line.find_first_not_of(" \t");
    if (start == std::string::npos) continue;
    EXPECT_EQ(line[start], '#') << "active suppression: " << line;
  }
}

}  // namespace
