#include "cam/lut.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::cam {
namespace {

using fefet::ChannelParams;
using fefet::LevelMap;
using fefet::PreisachParams;
using fefet::PulseProgrammer;
using fefet::PulseScheme;
using fefet::SamplingMode;
using fefet::VthMap;

class LutTest : public ::testing::Test {
 protected:
  LutTest() : map_(3), lut_(ConductanceLut::nominal(map_)) {}
  LevelMap map_;
  ConductanceLut lut_;
};

TEST_F(LutTest, DimensionsMatchLevelMap) {
  EXPECT_EQ(lut_.num_states(), 8u);
  EXPECT_THROW((void)lut_.g(8, 0), std::out_of_range);
  EXPECT_THROW((void)lut_.g(0, 8), std::out_of_range);
}

TEST_F(LutTest, DiagonalIsMinimalPerColumn) {
  // For every stored state, the matching input has the smallest G.
  for (std::size_t stored = 0; stored < 8; ++stored) {
    const double g_match = lut_.g(stored, stored);
    for (std::size_t input = 0; input < 8; ++input) {
      if (input == stored) continue;
      EXPECT_GT(lut_.g(input, stored), g_match);
    }
  }
}

TEST_F(LutTest, ConductanceMonotoneInDistance) {
  for (std::size_t stored = 0; stored < 8; ++stored) {
    for (std::size_t input = stored + 1; input < 8; ++input) {
      EXPECT_GT(lut_.g(input, stored), lut_.g(input - 1, stored));
    }
    for (std::size_t input = 0; input < stored; ++input) {
      EXPECT_GT(lut_.g(input, stored), lut_.g(input + 1, stored));
    }
  }
}

TEST_F(LutTest, NearSymmetricUnderTranspose) {
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = 0; b < 8; ++b) {
      EXPECT_NEAR(std::log10(lut_.g(a, b) / lut_.g(b, a)), 0.0, 0.05);
    }
  }
}

TEST_F(LutTest, MeanGByDistanceMonotone) {
  const std::vector<double> by_distance = lut_.mean_g_by_distance();
  ASSERT_EQ(by_distance.size(), 8u);
  for (std::size_t d = 1; d < 8; ++d) {
    EXPECT_GT(by_distance[d], by_distance[d - 1]);
  }
}

TEST_F(LutTest, DistanceProfileOfS1MatchesPaperShape) {
  // Fig. 4(a)/(d): exponential rise then saturation; derivative peaks in
  // the 3..5 distance band and droops at 6-7.
  const DistanceProfile profile = distance_profile(lut_, 0);
  ASSERT_EQ(profile.distance.size(), 8u);
  ASSERT_EQ(profile.derivative.size(), 7u);
  std::size_t peak = 0;
  for (std::size_t d = 1; d < profile.derivative.size(); ++d) {
    if (profile.derivative[d] > profile.derivative[peak]) peak = d;
  }
  EXPECT_GE(peak, 3u);
  EXPECT_LE(peak, 5u);
  // Droop at the far end: last derivative below the peak.
  EXPECT_LT(profile.derivative.back(), 0.5 * profile.derivative[peak]);
  // Exponential early growth: each of the first steps multiplies G by > 2.
  for (std::size_t d = 1; d <= 3; ++d) {
    EXPECT_GT(profile.conductance[d + 1] / profile.conductance[d], 2.0);
  }
}

TEST_F(LutTest, DistanceProfileDescendingForHighStates) {
  // Stored S8 sweeps downward; profile still monotone with full range.
  const DistanceProfile profile = distance_profile(lut_, 7);
  ASSERT_EQ(profile.distance.size(), 8u);
  for (std::size_t d = 1; d < profile.conductance.size(); ++d) {
    EXPECT_GT(profile.conductance[d], profile.conductance[d - 1]);
  }
}

TEST_F(LutTest, ProfileOutOfRangeThrows) {
  EXPECT_THROW((void)distance_profile(lut_, 8), std::out_of_range);
}

TEST(Lut, ProgrammedQuantileMatchesNominalOrdering) {
  const LevelMap map{3};
  const PulseProgrammer programmer{map.programmable_vth_levels(), PreisachParams{},
                                   VthMap{}, PulseScheme{}};
  const ConductanceLut nominal = ConductanceLut::nominal(map);
  const ConductanceLut programmed = ConductanceLut::programmed(
      map, programmer, PreisachParams{}, ChannelParams{}, SamplingMode::kQuantile, 1);
  for (std::size_t stored = 0; stored < 8; ++stored) {
    for (std::size_t input = 1; input < 8; ++input) {
      const bool nominal_rises = nominal.g(input, stored) > nominal.g(input - 1, stored);
      const bool programmed_rises =
          programmed.g(input, stored) > programmed.g(input - 1, stored);
      EXPECT_EQ(nominal_rises, programmed_rises);
    }
  }
}

TEST(Lut, WithVthNoisePerturbsEntries) {
  const LevelMap map{3};
  const ConductanceLut nominal = ConductanceLut::nominal(map);
  Rng rng{3};
  const ConductanceLut noisy = nominal.with_vth_noise(map, ChannelParams{}, 0.05, rng);
  bool any_changed = false;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t s = 0; s < 8; ++s) {
      if (noisy.g(i, s) != nominal.g(i, s)) any_changed = true;
    }
  }
  EXPECT_TRUE(any_changed);
}

TEST(Lut, FromValuesRoundTrips) {
  std::vector<double> values(4, 0.0);
  values[0 * 2 + 0] = 1.0;
  values[0 * 2 + 1] = 2.0;
  values[1 * 2 + 0] = 3.0;
  values[1 * 2 + 1] = 4.0;
  const ConductanceLut lut = ConductanceLut::from_values(2, values);
  EXPECT_DOUBLE_EQ(lut.g(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(lut.g(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(lut.g(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(lut.g(1, 1), 4.0);
}

TEST(Lut, FromValuesSizeMismatchThrows) {
  EXPECT_THROW((void)ConductanceLut::from_values(3, std::vector<double>(8, 0.0)),
               std::invalid_argument);
}

TEST(Lut, DistanceScatterCoversAllPairsAndSpreads) {
  const LevelMap map{2};
  const PulseProgrammer programmer{map.programmable_vth_levels(), PreisachParams{},
                                   VthMap{}, PulseScheme{}};
  const DistanceScatter scatter =
      distance_scatter(map, programmer, PreisachParams{}, ChannelParams{}, 4, 9);
  ASSERT_EQ(scatter.distance.size(), 4u * 4u * 4u);
  ASSERT_EQ(scatter.conductance.size(), scatter.distance.size());
  // Same-distance points from different Monte-Carlo cells must spread
  // (that spread is the Fig. 4(b) scatter).
  double g_first_d1 = -1.0;
  bool spread = false;
  for (std::size_t i = 0; i < scatter.distance.size(); ++i) {
    if (scatter.distance[i] == 1.0) {
      if (g_first_d1 < 0.0) {
        g_first_d1 = scatter.conductance[i];
      } else if (std::fabs(scatter.conductance[i] - g_first_d1) > 1e-12) {
        spread = true;
      }
    }
  }
  EXPECT_TRUE(spread);
}

TEST(Lut, TwoBitNominalProfile) {
  const LevelMap map{2};
  const ConductanceLut lut = ConductanceLut::nominal(map);
  const DistanceProfile profile = distance_profile(lut, 0);
  ASSERT_EQ(profile.distance.size(), 4u);
  for (std::size_t d = 1; d < 4; ++d) {
    EXPECT_GT(profile.conductance[d], profile.conductance[d - 1]);
  }
  // 2-bit windows are 240 mV: one step of distance is already ~a decade.
  EXPECT_GT(profile.conductance[1] / profile.conductance[0], 8.0);
}

}  // namespace
}  // namespace mcam::cam
