#include "fefet/device.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::fefet {
namespace {

TEST(VthMap, EndpointsSpanLevelPlan) {
  const VthMap map;
  // Erased (P = -Ps) -> 1.320 V; fully programmed (P = +Ps) -> 0.360 V.
  EXPECT_NEAR(map.vth(-1.0, 1.0), 1.320, 1e-12);
  EXPECT_NEAR(map.vth(1.0, 1.0), 0.360, 1e-12);
  EXPECT_NEAR(map.vth(0.0, 1.0), 0.840, 1e-12);
}

TEST(FefetDevice, StartsErasedAtHighestVth) {
  const FefetDevice device;
  EXPECT_NEAR(device.vth(), 1.320, 1e-9);
}

TEST(FefetDevice, EraseAfterProgramRestoresVth) {
  FefetDevice device;
  device.program_pulse(4.0, 200e-9);
  EXPECT_LT(device.vth(), 1.0);
  device.erase();
  EXPECT_NEAR(device.vth(), 1.320, 1e-9);
}

TEST(FefetDevice, StrongerPulseLowersVth) {
  FefetDevice weak;
  FefetDevice strong;
  weak.program_pulse(2.2, 200e-9);
  strong.program_pulse(3.6, 200e-9);
  EXPECT_GT(weak.vth(), strong.vth());
}

TEST(FefetDevice, VthOffsetShiftsThreshold) {
  FefetDevice device;
  const double base = device.vth();
  device.set_vth_offset(0.05);
  EXPECT_NEAR(device.vth(), base + 0.05, 1e-12);
}

TEST(ChannelConductance, MonotoneInOverdrive) {
  const ChannelParams channel;
  double previous = 0.0;
  for (double od = -0.5; od <= 1.0; od += 0.05) {
    const double g = channel_conductance(channel, od);
    EXPECT_GT(g, previous);
    previous = g;
  }
}

TEST(ChannelConductance, LeakageFloorDeepOff) {
  const ChannelParams channel;
  const double g = channel_conductance(channel, -1.0);
  EXPECT_NEAR(g, channel.g_leak, 0.1 * channel.g_leak);
}

TEST(ChannelConductance, SeriesResistanceCapsOnState) {
  const ChannelParams channel;
  const double g = channel_conductance(channel, 3.0);
  EXPECT_LT(g, 1.0 / channel.r_on + channel.g_leak + 1e-9);
  EXPECT_GT(g, 0.9 / channel.r_on);
}

TEST(ChannelConductance, ExponentialSubthresholdSlope) {
  const ChannelParams channel;
  // In weak inversion the ratio over one v_slope of overdrive is ~e.
  const double g1 = channel_conductance(channel, -0.30) - channel.g_leak;
  const double g2 = channel_conductance(channel, -0.30 + channel.v_slope) - channel.g_leak;
  EXPECT_NEAR(g2 / g1, std::exp(1.0), 0.05 * std::exp(1.0));
}

TEST(ChannelConductance, NoOverflowAtExtremeOverdrive) {
  const ChannelParams channel;
  const double g = channel_conductance(channel, 100.0);
  EXPECT_TRUE(std::isfinite(g));
}

TEST(FefetDevice, ConductanceUsesCurrentVth) {
  FefetDevice device;
  const double g_erased = device.conductance(0.9);
  device.ensemble().force_up_fraction(0.875);  // Vth -> 0.48 V.
  const double g_programmed = device.conductance(0.9);
  EXPECT_GT(g_programmed, 100.0 * g_erased);
}

TEST(FefetDevice, DrainCurrentSaturatesInVds) {
  FefetDevice device;
  device.ensemble().force_up_fraction(0.875);
  const double i_small = device.drain_current(1.0, 0.05);
  const double i_mid = device.drain_current(1.0, 0.4);
  const double i_large = device.drain_current(1.0, 2.0);
  EXPECT_GT(i_mid, i_small);
  // Saturation: doubling Vds beyond v_dsat gains little.
  EXPECT_LT(i_large, 1.2 * device.drain_current(1.0, 1.0));
}

TEST(TransferCurve, EightStatesAreOrdered) {
  // Fig. 2(b): programming to lower Vth shifts the transfer curve left,
  // i.e. raises the current at a fixed mid-sweep gate voltage.
  double previous = -1.0;
  for (int level = 0; level < 8; ++level) {
    FefetDevice device;
    device.ensemble().force_up_fraction(0.875 - 0.125 * level);  // Vth 0.48..1.32.
    const TransferCurve curve = trace_transfer_curve(device, 0.1, 0.0, 1.2, 25);
    const double id_mid = curve.id[12];
    if (previous >= 0.0) {
      EXPECT_LT(id_mid, previous);
    }
    previous = id_mid;
  }
}

TEST(TransferCurve, SpansSeveralDecades) {
  FefetDevice device;
  device.ensemble().force_up_fraction(0.5);
  const TransferCurve curve = trace_transfer_curve(device, 0.1, 0.0, 1.2, 61);
  ASSERT_EQ(curve.vg.size(), 61u);
  const double ratio = curve.id.back() / curve.id.front();
  EXPECT_GT(ratio, 1e3);  // Fig. 2(b) shows >= 10^3 on/off over the sweep.
}

TEST(TransferCurve, InvalidPointsThrow) {
  const FefetDevice device;
  EXPECT_THROW((void)trace_transfer_curve(device, 0.1, 0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::fefet
