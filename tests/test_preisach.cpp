#include "fefet/preisach.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::fefet {
namespace {

PreisachParams default_params() { return PreisachParams{}; }

TEST(HysteronEnsemble, StartsUnpolarized) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  EXPECT_DOUBLE_EQ(e.up_fraction(), 0.0);
}

TEST(HysteronEnsemble, SaturationBounds) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.saturate_up();
  EXPECT_DOUBLE_EQ(e.polarization(), default_params().saturation_polarization);
  e.saturate_down();
  EXPECT_DOUBLE_EQ(e.polarization(), -default_params().saturation_polarization);
}

TEST(HysteronEnsemble, LargePositiveVoltageSaturates) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.apply_voltage(20.0);
  EXPECT_DOUBLE_EQ(e.up_fraction(), 1.0);
  e.apply_voltage(-20.0);
  EXPECT_DOUBLE_EQ(e.up_fraction(), 0.0);
}

TEST(HysteronEnsemble, AscendingBranchIsMonotone) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.saturate_down();
  double previous = e.polarization();
  for (double v = 0.0; v <= 6.0; v += 0.25) {
    e.apply_voltage(v);
    EXPECT_GE(e.polarization(), previous - 1e-12);
    previous = e.polarization();
  }
}

TEST(HysteronEnsemble, MidCoerciveVoltageSwitchesHalf) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.saturate_down();
  e.apply_voltage(default_params().coercive_mean);
  EXPECT_NEAR(e.up_fraction(), 0.5, 0.05);
}

TEST(HysteronEnsemble, HysteresisMemory) {
  // After partial switching, reducing the voltage does not un-switch (the
  // hysteron only flips down below its negative coercive voltage).
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.saturate_down();
  e.apply_voltage(3.0);
  const double fraction = e.up_fraction();
  EXPECT_GT(fraction, 0.0);
  e.apply_voltage(0.0);
  EXPECT_DOUBLE_EQ(e.up_fraction(), fraction);
}

TEST(HysteronEnsemble, WipeOutProperty) {
  // Classical Preisach wipe-out: a larger excursion erases the memory of a
  // smaller intermediate one.
  HysteronEnsemble a{default_params(), SamplingMode::kQuantile};
  a.saturate_down();
  a.apply_voltage(2.5);
  a.apply_voltage(1.0);  // Minor event (no further switching either way).
  a.apply_voltage(3.5);  // Larger excursion dominates.

  HysteronEnsemble b{default_params(), SamplingMode::kQuantile};
  b.saturate_down();
  b.apply_voltage(3.5);
  EXPECT_DOUBLE_EQ(a.polarization(), b.polarization());
}

TEST(HysteronEnsemble, QuantileModeIsDeterministic) {
  HysteronEnsemble a{default_params(), SamplingMode::kQuantile};
  HysteronEnsemble b{default_params(), SamplingMode::kQuantile};
  a.apply_voltage(2.9);
  b.apply_voltage(2.9);
  EXPECT_DOUBLE_EQ(a.polarization(), b.polarization());
}

TEST(HysteronEnsemble, MonteCarloDevicesDiffer) {
  PreisachParams params = default_params();
  Rng rng{5};
  HysteronEnsemble a{params, SamplingMode::kMonteCarlo, rng.fork(0)};
  HysteronEnsemble b{params, SamplingMode::kMonteCarlo, rng.fork(1)};
  a.apply_voltage(2.8);
  b.apply_voltage(2.8);
  // Same pulse, different coercive landscapes -> (almost surely) different
  // switched fractions.
  EXPECT_NE(a.up_fraction(), b.up_fraction());
}

TEST(HysteronEnsemble, DeviceSigmaShiftsWholeDevice) {
  PreisachParams params = default_params();
  params.device_sigma = 0.5;
  Rng rng{11};
  // With a large device-level shift, devices differ in their half-switching
  // voltage; verify spread across devices exceeds the no-shift case.
  double with_shift = 0.0;
  for (int d = 0; d < 32; ++d) {
    HysteronEnsemble e{params, SamplingMode::kMonteCarlo, rng.fork(d)};
    e.apply_voltage(params.coercive_mean);
    with_shift += std::fabs(e.up_fraction() - 0.5);
  }
  params.device_sigma = 0.0;
  double without_shift = 0.0;
  for (int d = 0; d < 32; ++d) {
    HysteronEnsemble e{params, SamplingMode::kMonteCarlo, rng.fork(100 + d)};
    e.apply_voltage(params.coercive_mean);
    without_shift += std::fabs(e.up_fraction() - 0.5);
  }
  EXPECT_GT(with_shift, without_shift);
}

TEST(HysteronEnsemble, NlsShortPulseSwitchesLess) {
  PreisachParams params = default_params();
  HysteronEnsemble slow{params, SamplingMode::kQuantile};
  HysteronEnsemble fast{params, SamplingMode::kQuantile};
  slow.saturate_down();
  fast.saturate_down();
  slow.apply_pulse(3.0, 1e-3);   // Quasi-static.
  fast.apply_pulse(3.0, 2e-9);   // Barely longer than tau0.
  EXPECT_GE(slow.up_fraction(), fast.up_fraction());
  EXPECT_GT(slow.up_fraction(), 0.0);
}

TEST(HysteronEnsemble, NegativePulseSwitchesDown) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.saturate_up();
  e.apply_pulse(-6.0, 500e-9);
  EXPECT_LT(e.up_fraction(), 0.2);
}

TEST(HysteronEnsemble, ForceUpFractionExact) {
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.force_up_fraction(0.375);  // 15 of 40 hysterons.
  EXPECT_NEAR(e.up_fraction(), 0.375, 1e-12);
  e.force_up_fraction(0.0);
  EXPECT_DOUBLE_EQ(e.up_fraction(), 0.0);
  e.force_up_fraction(1.0);
  EXPECT_DOUBLE_EQ(e.up_fraction(), 1.0);
}

TEST(HysteronEnsemble, ForceUpFractionMatchesQuasiStaticOrder) {
  // Forcing fraction f then raising the voltage must behave like the
  // ascending branch: the forced-up hysterons are those that switch first.
  HysteronEnsemble e{default_params(), SamplingMode::kQuantile};
  e.force_up_fraction(0.25);
  const double before = e.up_fraction();
  // A voltage just above the 25th-percentile coercive voltage adds little.
  e.apply_voltage(default_params().coercive_mean - 0.6 * default_params().coercive_sigma);
  EXPECT_GE(e.up_fraction(), before);
}

TEST(HysteronEnsemble, ZeroDomainsThrows) {
  PreisachParams params = default_params();
  params.num_domains = 0;
  EXPECT_THROW((HysteronEnsemble{params, SamplingMode::kQuantile}), std::invalid_argument);
}

TEST(MajorLoop, TraceShapesAndSymmetry) {
  const LoopTrace trace = trace_major_loop(default_params(), 6.0, 100);
  ASSERT_EQ(trace.voltage.size(), 200u);
  ASSERT_EQ(trace.polarization.size(), 200u);
  // Starts near -Ps, reaches +Ps at the apex, returns to -Ps region only
  // after the descending branch passes the negative coercive region.
  EXPECT_NEAR(trace.polarization.front(), -1.0, 1e-9);
  EXPECT_NEAR(trace.polarization[99], 1.0, 1e-9);
  EXPECT_NEAR(trace.polarization.back(), -1.0, 1e-9);
}

TEST(MajorLoop, ExhibitsHysteresis) {
  // At 0 V the ascending branch (coming from -Ps) and descending branch
  // (coming from +Ps) must disagree: that opening is the hysteresis.
  const LoopTrace trace = trace_major_loop(default_params(), 6.0, 201);
  double ascending_at_zero = 0.0;
  double descending_at_zero = 0.0;
  for (std::size_t i = 0; i < 201; ++i) {
    if (std::fabs(trace.voltage[i]) < 0.02) ascending_at_zero = trace.polarization[i];
  }
  for (std::size_t i = 201; i < trace.voltage.size(); ++i) {
    if (std::fabs(trace.voltage[i]) < 0.02) descending_at_zero = trace.polarization[i];
  }
  EXPECT_GT(descending_at_zero, ascending_at_zero + 0.5);
}

TEST(MajorLoop, InvalidStepsThrow) {
  EXPECT_THROW((void)trace_major_loop(default_params(), 6.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::fefet
