#include "distance/mcam_distance.hpp"
#include "distance/metrics.hpp"

#include "cam/lut.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::distance {
namespace {

TEST(Metrics, CosineBasics) {
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{0.0f, 1.0f};
  const std::vector<float> c{2.0f, 0.0f};
  EXPECT_NEAR(cosine(a, a), 0.0, 1e-7);
  EXPECT_NEAR(cosine(a, b), 1.0, 1e-7);
  EXPECT_NEAR(cosine(a, c), 0.0, 1e-7);  // Scale invariant.
}

TEST(Metrics, CosineZeroVectorConvention) {
  const std::vector<float> zero{0.0f, 0.0f};
  const std::vector<float> a{1.0f, 2.0f};
  EXPECT_DOUBLE_EQ(cosine(zero, a), 1.0);
}

TEST(Metrics, EuclideanAndSquared) {
  const std::vector<float> a{0.0f, 3.0f};
  const std::vector<float> b{4.0f, 0.0f};
  EXPECT_NEAR(euclidean(a, b), 5.0, 1e-7);
  EXPECT_NEAR(squared_euclidean(a, b), 25.0, 1e-6);
}

TEST(Metrics, LinfIsMaxComponent) {
  const std::vector<float> a{1.0f, 5.0f, 2.0f};
  const std::vector<float> b{2.0f, 1.0f, 2.0f};
  EXPECT_NEAR(linf(a, b), 4.0, 1e-7);
}

TEST(Metrics, ManhattanIsSum) {
  const std::vector<float> a{1.0f, 5.0f, 2.0f};
  const std::vector<float> b{2.0f, 1.0f, 2.0f};
  EXPECT_NEAR(manhattan(a, b), 5.0, 1e-7);
}

TEST(Metrics, SymmetryAndIdentity) {
  Rng rng{3};
  std::vector<float> a(16);
  std::vector<float> b(16);
  for (std::size_t i = 0; i < 16; ++i) {
    a[i] = static_cast<float>(rng.normal());
    b[i] = static_cast<float>(rng.normal());
  }
  for (const auto& name : {"cosine", "euclidean", "linf", "manhattan"}) {
    const Metric m = metric_by_name(name);
    EXPECT_NEAR(m(a, b), m(b, a), 1e-9) << name;
    EXPECT_NEAR(m(a, a), 0.0, 1e-6) << name;
  }
}

TEST(Metrics, EuclideanTriangleInequality) {
  Rng rng{5};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a(8);
    std::vector<float> b(8);
    std::vector<float> c(8);
    for (std::size_t i = 0; i < 8; ++i) {
      a[i] = static_cast<float>(rng.normal());
      b[i] = static_cast<float>(rng.normal());
      c[i] = static_cast<float>(rng.normal());
    }
    EXPECT_LE(euclidean(a, c), euclidean(a, b) + euclidean(b, c) + 1e-5);
  }
}

TEST(Metrics, UnknownNameThrows) {
  EXPECT_THROW((void)metric_by_name("hamming-ish"), std::invalid_argument);
}

TEST(McamDistanceFn, ZeroForIdenticalVectors) {
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{3});
  const McamDistance d{lut};
  const std::vector<std::uint16_t> v{0, 3, 5, 7};
  // Not literally zero (leakage), but equal to the sum of match entries.
  double expected = 0.0;
  for (std::uint16_t level : v) expected += lut.g(level, level);
  EXPECT_NEAR(d(v, v), expected, 1e-18);
}

TEST(McamDistanceFn, GrowsWithLevelDistance) {
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{3});
  const McamDistance d{lut};
  const std::vector<std::uint16_t> base{4, 4, 4, 4};
  const std::vector<std::uint16_t> near{4, 4, 4, 5};
  const std::vector<std::uint16_t> far{4, 4, 4, 7};
  EXPECT_LT(d(base, base), d(base, near));
  EXPECT_LT(d(base, near), d(base, far));
}

TEST(McamDistanceFn, LengthMismatchThrows) {
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{2});
  const McamDistance d{lut};
  EXPECT_THROW((void)d(std::vector<std::uint16_t>{1},
                       std::vector<std::uint16_t>{1, 2}),
               std::invalid_argument);
}

TEST(SaturatingExponentialFn, MatchesQualitativeShape) {
  const SaturatingExponential f;
  EXPECT_LT(f.cell(0), f.cell(1));
  EXPECT_LT(f.cell(1), f.cell(4));
  // Saturation: step 6->7 adds less than step 2->3 multiplicatively.
  EXPECT_LT(f.cell(7) / f.cell(6), f.cell(3) / f.cell(2));
  EXPECT_LT(f.cell(100), 1.0 / f.r_on + 1e-12);
}

TEST(SaturatingExponentialFn, OrdersLikeCircuitLut) {
  // The closed-form surrogate must induce the same nearest-neighbor choice
  // as the circuit-derived LUT on random workloads.
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{3});
  const McamDistance circuit{lut};
  const SaturatingExponential surrogate;
  Rng rng{11};
  int agreements = 0;
  constexpr int kTrials = 100;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<std::vector<std::uint16_t>> rows(8, std::vector<std::uint16_t>(16));
    std::vector<std::uint16_t> query(16);
    for (auto& row : rows) {
      for (auto& level : row) level = static_cast<std::uint16_t>(rng.index(8));
    }
    for (auto& level : query) level = static_cast<std::uint16_t>(rng.index(8));
    std::size_t best_circuit = 0;
    std::size_t best_surrogate = 0;
    for (std::size_t r = 1; r < rows.size(); ++r) {
      if (circuit(query, rows[r]) < circuit(query, rows[best_circuit])) best_circuit = r;
      if (surrogate(query, rows[r]) < surrogate(query, rows[best_surrogate]))
        best_surrogate = r;
    }
    agreements += best_circuit == best_surrogate ? 1 : 0;
  }
  EXPECT_GE(agreements, 90);
}

TEST(McamDistanceFn, DominatedByLargestSingleDeviation) {
  // The exponential shape means one far feature outweighs several near
  // ones (the G_n^d analysis of Sec. III-B) - verify at the metric level.
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{3});
  const McamDistance d{lut};
  std::vector<std::uint16_t> query(16, 0);
  std::vector<std::uint16_t> one_far(16, 0);
  one_far[0] = 4;
  std::vector<std::uint16_t> four_near(16, 0);
  for (int i = 0; i < 4; ++i) four_near[i] = 1;
  EXPECT_GT(d(query, one_far), d(query, four_near));
}

}  // namespace
}  // namespace mcam::distance
