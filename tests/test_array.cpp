#include "cam/array.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcam::cam {
namespace {

std::vector<std::uint16_t> row(std::initializer_list<int> levels) {
  std::vector<std::uint16_t> out;
  for (int l : levels) out.push_back(static_cast<std::uint16_t>(l));
  return out;
}

TEST(McamArray, AddRowValidation) {
  McamArray array{McamArrayConfig{}};
  EXPECT_THROW((void)array.add_row(std::vector<std::uint16_t>{}), std::invalid_argument);
  array.add_row(row({1, 2, 3}));
  EXPECT_THROW((void)array.add_row(row({1, 2})), std::invalid_argument);
  EXPECT_THROW((void)array.add_row(row({1, 2, 9})), std::out_of_range);
  EXPECT_EQ(array.num_rows(), 1u);
  EXPECT_EQ(array.word_length(), 3u);
}

TEST(McamArray, SearchConductancesEqualLutSums) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({0, 3, 7}));
  array.add_row(row({2, 2, 2}));
  const auto query = row({1, 3, 6});
  const std::vector<double> totals = array.search_conductances(query);
  ASSERT_EQ(totals.size(), 2u);
  const ConductanceLut& lut = array.lut();
  EXPECT_NEAR(totals[0], lut.g(1, 0) + lut.g(3, 3) + lut.g(6, 7), 1e-18);
  EXPECT_NEAR(totals[1], lut.g(1, 2) + lut.g(3, 2) + lut.g(6, 2), 1e-18);
}

TEST(McamArray, NearestFindsExactMatchRow) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({0, 1, 2, 3}));
  array.add_row(row({4, 5, 6, 7}));
  array.add_row(row({7, 0, 7, 0}));
  const SearchOutcome outcome = array.nearest(row({4, 5, 6, 7}));
  EXPECT_EQ(outcome.row, 1u);
}

TEST(McamArray, NearestPrefersSmallestTotalDistance) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({2, 2, 2, 2}));  // distance 4 (1 per cell)
  array.add_row(row({3, 3, 3, 3}));  // distance 0
  array.add_row(row({3, 3, 3, 5}));  // distance 2
  const SearchOutcome outcome = array.nearest(row({3, 3, 3, 3}));
  EXPECT_EQ(outcome.row, 1u);
}

TEST(McamArray, ExponentialDistanceConcentration) {
  // Sec. III-B: G_1^4 > G_4^1 and G_1^7 >> G_7^1 on 16-cell rows: one far
  // mismatch outweighs several near ones even at larger total distance.
  McamArrayConfig config;
  McamArray array{config};
  std::vector<std::uint16_t> match(16, 0);
  auto one_cell_d4 = match;
  one_cell_d4[0] = 4;
  auto four_cells_d1 = match;
  for (int i = 0; i < 4; ++i) four_cells_d1[i] = 1;
  auto one_cell_d7 = match;
  one_cell_d7[0] = 7;
  auto seven_cells_d1 = match;
  for (int i = 0; i < 7; ++i) seven_cells_d1[i] = 1;
  array.add_row(one_cell_d4);
  array.add_row(four_cells_d1);
  array.add_row(one_cell_d7);
  array.add_row(seven_cells_d1);
  const std::vector<double> g = array.search_conductances(match);
  EXPECT_GT(g[0], g[1]);          // G_1^4 > G_4^1.
  EXPECT_GT(g[2], 10.0 * g[3]);   // G_1^7 >> G_7^1.
  EXPECT_GT(g[0], g[3]);          // G_1^4 > G_7^1.
}

TEST(McamArray, MatchlineTimingAgreesWithIdealSum) {
  McamArrayConfig ideal_config;
  McamArrayConfig timing_config;
  timing_config.sensing = SensingMode::kMatchlineTiming;
  McamArray ideal{ideal_config};
  McamArray timing{timing_config};
  Rng rng{5};
  std::vector<std::vector<std::uint16_t>> rows;
  for (int r = 0; r < 12; ++r) {
    std::vector<std::uint16_t> levels(16);
    for (auto& l : levels) l = static_cast<std::uint16_t>(rng.index(8));
    rows.push_back(levels);
  }
  ideal.program(rows);
  timing.program(rows);
  for (int q = 0; q < 20; ++q) {
    std::vector<std::uint16_t> query(16);
    for (auto& l : query) l = static_cast<std::uint16_t>(rng.index(8));
    EXPECT_EQ(ideal.nearest(query).row, timing.nearest(query).row);
  }
}

TEST(McamArray, MatchlineTimingPopulatesSenseResult) {
  McamArrayConfig config;
  config.sensing = SensingMode::kMatchlineTiming;
  McamArray array{config};
  array.add_row(row({0, 0, 0, 0}));
  array.add_row(row({7, 7, 7, 7}));
  const SearchOutcome outcome = array.nearest(row({0, 0, 0, 0}));
  EXPECT_EQ(outcome.row, 0u);
  ASSERT_EQ(outcome.sense.times.size(), 2u);
  EXPECT_GT(outcome.sense.times[0], outcome.sense.times[1]);
  EXPECT_GT(outcome.sense.margin, 0.0);
}

TEST(McamArray, CoarseSenseClockCanTieNearbyRows) {
  McamArrayConfig config;
  config.sensing = SensingMode::kMatchlineTiming;
  config.sense_clock_period = 1.0;  // Absurdly coarse: everything ties.
  McamArray array{config};
  array.add_row(row({0, 0, 0, 1}));
  array.add_row(row({0, 0, 1, 0}));
  const SearchOutcome outcome = array.nearest(row({0, 0, 0, 0}));
  EXPECT_TRUE(outcome.sense.tie);
}

TEST(McamArray, ExactMatchSearch) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({1, 2, 3}));
  array.add_row(row({1, 2, 4}));
  array.add_row(row({1, 2, 3}));
  // The limit must sit between the per-cell match level (~3 nS) and the
  // distance-1 level (~7.4 nS); 4 nS/cell separates them at row scale.
  const auto matches = array.exact_matches(row({1, 2, 3}), 4e-9);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0], 0u);
  EXPECT_EQ(matches[1], 2u);
}

TEST(McamArray, QueryLengthMismatchThrows) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({1, 2, 3}));
  EXPECT_THROW((void)array.search_conductances(row({1, 2})), std::invalid_argument);
}

TEST(McamArray, NearestOnEmptyThrows) {
  McamArray array{McamArrayConfig{}};
  EXPECT_THROW((void)array.nearest(row({0})), std::logic_error);
}

TEST(McamArray, ClearResets) {
  McamArray array{McamArrayConfig{}};
  array.add_row(row({1, 2}));
  array.clear();
  EXPECT_EQ(array.num_rows(), 0u);
  array.add_row(row({1, 2, 3}));  // New word length accepted after clear.
  EXPECT_EQ(array.word_length(), 3u);
}

TEST(McamArray, ProgrammingNoiseIsStablePerInstance) {
  McamArrayConfig config;
  config.vth_sigma = 0.05;
  config.seed = 9;
  McamArray array{config};
  array.add_row(row({3, 4, 5, 6}));
  const auto q = row({3, 4, 5, 6});
  const double g1 = array.search_conductances(q)[0];
  const double g2 = array.search_conductances(q)[0];
  EXPECT_DOUBLE_EQ(g1, g2);  // Same hardware instance across searches.
}

TEST(McamArray, DifferentSeedsGiveDifferentInstances) {
  McamArrayConfig a_config;
  a_config.vth_sigma = 0.05;
  a_config.seed = 1;
  McamArrayConfig b_config = a_config;
  b_config.seed = 2;
  McamArray a{a_config};
  McamArray b{b_config};
  a.add_row(row({3, 4, 5, 6}));
  b.add_row(row({3, 4, 5, 6}));
  const auto q = row({3, 4, 5, 6});
  EXPECT_NE(a.search_conductances(q)[0], b.search_conductances(q)[0]);
}

TEST(McamArray, ZeroNoiseMatchesLutExactly) {
  McamArrayConfig config;
  config.vth_sigma = 0.0;
  McamArray array{config};
  array.add_row(row({5}));
  EXPECT_DOUBLE_EQ(array.search_conductances(row({2}))[0], array.lut().g(2, 5));
}

TEST(McamArray, HugeNoiseBreaksNearestNeighbor) {
  // Sanity: with sigma far beyond the window, ranking must degrade for at
  // least some queries (this is the regime past the Fig. 8 cliff).
  McamArrayConfig clean_config;
  McamArrayConfig noisy_config;
  noisy_config.vth_sigma = 0.50;
  noisy_config.seed = 13;
  McamArray clean{clean_config};
  McamArray noisy{noisy_config};
  Rng rng{21};
  std::vector<std::vector<std::uint16_t>> rows;
  for (int r = 0; r < 16; ++r) {
    std::vector<std::uint16_t> levels(8);
    for (auto& l : levels) l = static_cast<std::uint16_t>(rng.index(8));
    rows.push_back(levels);
  }
  clean.program(rows);
  noisy.program(rows);
  int disagreements = 0;
  for (int q = 0; q < 40; ++q) {
    std::vector<std::uint16_t> query(8);
    for (auto& l : query) l = static_cast<std::uint16_t>(rng.index(8));
    if (clean.nearest(query).row != noisy.nearest(query).row) ++disagreements;
  }
  EXPECT_GT(disagreements, 0);
}

/// Parameterized sweep over bit widths: the array works for any B.
class McamArrayBits : public ::testing::TestWithParam<unsigned> {};

TEST_P(McamArrayBits, SelfMatchAlwaysWins) {
  McamArrayConfig config;
  config.level_map = fefet::LevelMap{GetParam()};
  McamArray array{config};
  const auto n = static_cast<std::uint16_t>(config.level_map.num_states());
  Rng rng{GetParam()};
  std::vector<std::vector<std::uint16_t>> rows;
  for (int r = 0; r < 8; ++r) {
    std::vector<std::uint16_t> levels(12);
    for (auto& l : levels) l = static_cast<std::uint16_t>(rng.index(n));
    rows.push_back(levels);
  }
  array.program(rows);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const SearchOutcome outcome = array.nearest(rows[r]);
    // The stored row itself (or an identical duplicate) must win.
    EXPECT_EQ(array.search_conductances(rows[r])[outcome.row],
              array.search_conductances(rows[r])[r]);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, McamArrayBits, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace mcam::cam
