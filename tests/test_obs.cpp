// The observability layer: metrics registry semantics (resolve-once
// handles, labels, kind mismatches, reset), golden-file exporter tests
// (Prometheus text + JSON-lines), the shared percentile estimator, trace
// record structure / sampling / sink, and the two load-bearing gates:
// tracing is strictly observational (traced queries bit-identical across
// the whole factory registry) and a refine trace's spans agree with the
// query's own telemetry.
#include "obs/exporters.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/factory.hpp"
#include "serve/service.hpp"
#include "store/manager.hpp"
#include "util/rng.hpp"
#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

namespace mcam {
namespace {

/// Labeled Gaussian blobs, one blob per class (the test_index_api idiom).
struct Blobs {
  std::vector<std::vector<float>> train;
  std::vector<int> train_labels;
  std::vector<std::vector<float>> queries;
};

Blobs make_blobs(std::size_t per_class, std::size_t classes, std::size_t dim,
                 double spread, std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  const auto sample = [&](std::size_t cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(static_cast<double>(cls) * 2.0 +
                                               static_cast<double>(i % 3) * 0.4,
                                           spread));
    }
    return v;
  };
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      blobs.train.push_back(sample(cls));
      blobs.train_labels.push_back(static_cast<int>(cls));
      blobs.queries.push_back(sample(cls));
    }
  }
  return blobs;
}

// Trace-inspection helpers are only referenced by the obs-enabled suite
// below; guard them so the -DMCAM_OBS_DISABLED build stays
// -Wunused-function-clean.
#ifndef MCAM_OBS_DISABLED
const obs::SpanRecord* find_span(const obs::TraceRecord& record, const char* name) {
  for (const obs::SpanRecord& span : record.spans) {
    if (std::strcmp(span.name, name) == 0) return &span;
  }
  return nullptr;
}

double note_value(const obs::SpanRecord& span, const char* key) {
  for (const auto& [note_key, value] : span.notes) {
    if (std::strcmp(note_key, key) == 0) return value;
  }
  ADD_FAILURE() << "span '" << span.name << "' has no note '" << key << "'";
  return -1.0;
}
#endif  // MCAM_OBS_DISABLED

// --- Shared percentile estimator ------------------------------------------

TEST(Statistics, NearestRankPercentileMatchesServeForwarder) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 9.0};
  for (double p : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(serve::nearest_rank_percentile(sorted, p),
                     mcam::nearest_rank_percentile(sorted, p))
        << p;
  }
  EXPECT_DOUBLE_EQ(mcam::nearest_rank_percentile({}, 50.0), 0.0);
  // Unsorted input is sorted internally; p is clamped.
  const std::vector<double> shuffled{9.0, 1.0, 4.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mcam::nearest_rank_percentile(shuffled, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(mcam::nearest_rank_percentile(shuffled, -5.0), 1.0);
  EXPECT_DOUBLE_EQ(mcam::nearest_rank_percentile(shuffled, 250.0), 9.0);
}

TEST(Statistics, PercentileWindowSlidesAndEstimates) {
  PercentileWindow window{4};
  EXPECT_TRUE(window.empty());
  EXPECT_DOUBLE_EQ(window.percentile(50.0), 0.0);
  window.add(10.0);
  window.add(20.0);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_EQ(window.total(), 2u);
  EXPECT_DOUBLE_EQ(window.mean(), 15.0);
  EXPECT_DOUBLE_EQ(window.percentile(50.0), 10.0);
  window.add(30.0);
  window.add(40.0);
  window.add(50.0);  // Evicts 10.0: the window now holds {20,30,40,50}.
  EXPECT_EQ(window.size(), 4u);
  EXPECT_EQ(window.total(), 5u);
  EXPECT_DOUBLE_EQ(window.percentile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(window.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(window.mean(), 35.0);
  window.clear();
  EXPECT_TRUE(window.empty());
  EXPECT_EQ(window.total(), 0u);
}

// --- Exporters (always compiled; golden strings) ---------------------------

using obs::MetricsSnapshot;

MetricsSnapshot golden_snapshot() {
  MetricsSnapshot snapshot;
  snapshot.counters.push_back(
      {"mcam_serve_requests_total", {{"outcome", "ok"}}, 41});
  snapshot.counters.push_back(
      {"mcam_serve_requests_total", {{"outcome", "rejected"}}, 2});
  snapshot.counters.push_back(
      {"tricky_total", {{"path", "a\\b"}, {"quote", "say \"hi\"\n"}}, 7});
  snapshot.gauges.push_back({"mcam_store_rows", {{"collection", "c1"}}, 12.0});
  obs::HistogramSample histogram;
  histogram.name = "mcam_serve_latency_ms";
  histogram.bounds = {0.5, 2.0};
  histogram.counts = {2, 0, 1};  // Non-cumulative; the +Inf bucket holds 1.
  histogram.sum = 10.75;
  histogram.count = 3;
  snapshot.histograms.push_back(histogram);
  return snapshot;
}

TEST(Exporters, PrometheusGolden) {
  const std::string expected =
      "# TYPE mcam_serve_requests_total counter\n"
      "mcam_serve_requests_total{outcome=\"ok\"} 41\n"
      "mcam_serve_requests_total{outcome=\"rejected\"} 2\n"
      "# TYPE tricky_total counter\n"
      "tricky_total{path=\"a\\\\b\",quote=\"say \\\"hi\\\"\\n\"} 7\n"
      "# TYPE mcam_store_rows gauge\n"
      "mcam_store_rows{collection=\"c1\"} 12\n"
      "# TYPE mcam_serve_latency_ms histogram\n"
      "mcam_serve_latency_ms_bucket{le=\"0.5\"} 2\n"
      "mcam_serve_latency_ms_bucket{le=\"2\"} 2\n"
      "mcam_serve_latency_ms_bucket{le=\"+Inf\"} 3\n"
      "mcam_serve_latency_ms_sum 10.75\n"
      "mcam_serve_latency_ms_count 3\n";
  EXPECT_EQ(obs::to_prometheus(golden_snapshot()), expected);
}

TEST(Exporters, JsonLinesGolden) {
  const std::string expected =
      "{\"type\":\"counter\",\"name\":\"mcam_serve_requests_total\","
      "\"labels\":{\"outcome\":\"ok\"},\"value\":41}\n"
      "{\"type\":\"counter\",\"name\":\"mcam_serve_requests_total\","
      "\"labels\":{\"outcome\":\"rejected\"},\"value\":2}\n"
      "{\"type\":\"counter\",\"name\":\"tricky_total\","
      "\"labels\":{\"path\":\"a\\\\b\",\"quote\":\"say \\\"hi\\\"\\n\"},\"value\":7}\n"
      "{\"type\":\"gauge\",\"name\":\"mcam_store_rows\","
      "\"labels\":{\"collection\":\"c1\"},\"value\":12}\n"
      "{\"type\":\"histogram\",\"name\":\"mcam_serve_latency_ms\",\"labels\":{},"
      "\"buckets\":[{\"le\":0.5,\"count\":2},{\"le\":2,\"count\":0},"
      "{\"le\":\"+Inf\",\"count\":1}],\"sum\":10.75,\"count\":3}\n";
  EXPECT_EQ(obs::to_jsonl(golden_snapshot()), expected);
}

TEST(Exporters, EmptySnapshotRendersEmpty) {
  EXPECT_EQ(obs::to_prometheus(MetricsSnapshot{}), "");
  EXPECT_EQ(obs::to_jsonl(MetricsSnapshot{}), "");
}

// The health exporter renders externally-built data in both obs builds:
// under -DMCAM_OBS_DISABLED the canary/monitor classes are stubs, but the
// report structs and this JSON surface must keep working unchanged.
TEST(Exporters, HealthReportJsonGolden) {
  obs::health::HealthReport report;
  report.canary.sampled = 10;
  report.canary.executed = 7;
  report.canary.stale = 2;
  report.canary.dropped = 1;
  report.canary.window = 7;
  report.canary.recall_estimate = 0.875;
  report.canary.mean_rank_displacement = 0.5;
  report.canary.coarse_misses = 3;
  report.canary.alarms = 1;
  report.canary.alarm_active = true;
  obs::health::BankHealth bank;
  bank.bank = "bank0/\"q\"";  // Exercises JSON escaping in the bank path.
  bank.rows = 4;
  bank.cells = 32;
  bank.mismatched_cells = 2;
  bank.faulty_cells = 1;
  bank.drift_score = 0.0625;
  bank.mean_abs_shift_v = 0.125;
  bank.max_abs_shift_v = 0.25;
  report.banks.push_back(bank);
  report.scrubs = 5;
  report.drift_alarms = 2;
  report.drift_alarm_active = false;

  const std::string expected =
      "{\"canary\":{\"sampled\":10,\"executed\":7,\"stale\":2,\"dropped\":1,"
      "\"window\":7,\"recall_estimate\":0.875,\"mean_rank_displacement\":0.5,"
      "\"coarse_misses\":3,\"alarms\":1,\"alarm_active\":true},"
      "\"banks\":[{\"bank\":\"bank0/\\\"q\\\"\",\"rows\":4,\"cells\":32,"
      "\"mismatched_cells\":2,\"faulty_cells\":1,\"drift_score\":0.0625,"
      "\"mean_abs_shift_v\":0.125,\"max_abs_shift_v\":0.25}],"
      "\"scrubs\":5,\"drift_alarms\":2,\"drift_alarm_active\":false}";
  EXPECT_EQ(obs::to_json(report), expected);

  const std::string empty =
      "{\"canary\":{\"sampled\":0,\"executed\":0,\"stale\":0,\"dropped\":0,"
      "\"window\":0,\"recall_estimate\":1,\"mean_rank_displacement\":0,"
      "\"coarse_misses\":0,\"alarms\":0,\"alarm_active\":false},"
      "\"banks\":[],\"scrubs\":0,\"drift_alarms\":0,\"drift_alarm_active\":false}";
  EXPECT_EQ(obs::to_json(obs::health::HealthReport{}), empty);
}

// --- Engine spec plumbing --------------------------------------------------

TEST(EngineSpec, TraceSampleKeyParsesAndRejectsGarbage) {
  const search::EngineSpec spec = search::parse_engine_spec("mcam:trace_sample=4");
  EXPECT_EQ(spec.config.trace_sample, 4u);
  EXPECT_EQ(search::parse_engine_spec("mcam").config.trace_sample, 0u);
  EXPECT_THROW((void)search::parse_engine_spec("mcam:trace_sample=x"),
               std::invalid_argument);
  try {
    (void)search::parse_engine_spec("mcam:definitely_unknown=1");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("trace_sample"), std::string::npos)
        << "known-key list should name trace_sample: " << e.what();
  }
}

TEST(TraceConfig, EffectiveSampleFallsBackToEnvironment) {
  EXPECT_EQ(obs::effective_trace_sample(5), 5u);
  // The env default is read once per process; whatever it is, 0 defers to it.
  EXPECT_EQ(obs::effective_trace_sample(0), obs::env_trace_sample());
}

// --- Tracing is strictly observational (works in both obs builds) ----------

TEST(TracingObservational, TracedQueriesBitIdenticalAcrossFactoryRegistry) {
  const Blobs blobs = make_blobs(6, 3, 8, 0.5, 91);
  for (const std::string& name : search::EngineFactory::instance().registered_names()) {
    search::EngineConfig config;
    config.num_features = 8;
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 8 : 0;
    if (name == "refine") {
      config.fine_spec = "euclidean";
      config.probes = 2;
    }
    auto index = search::make_index(name, config);
    index->add(blobs.train, blobs.train_labels);
    for (const auto& q : blobs.queries) {
      const search::QueryResult expect = index->query_one(q, 3);
      obs::Trace trace{"test.query"};
      search::QueryResult traced;
      {
        obs::ScopedTraceContext context{&trace};
        traced = index->query_one(q, 3);
      }
      (void)trace.finish();
      ASSERT_EQ(traced.label, expect.label) << name;
      ASSERT_EQ(traced.neighbors.size(), expect.neighbors.size()) << name;
      for (std::size_t n = 0; n < traced.neighbors.size(); ++n) {
        EXPECT_EQ(traced.neighbors[n].index, expect.neighbors[n].index) << name;
        EXPECT_EQ(traced.neighbors[n].distance, expect.neighbors[n].distance) << name;
      }
      EXPECT_EQ(traced.telemetry.energy_j, expect.telemetry.energy_j) << name;
      EXPECT_EQ(traced.telemetry.candidates, expect.telemetry.candidates) << name;
    }
  }
}

#ifndef MCAM_OBS_DISABLED

// --- Registry semantics ----------------------------------------------------

TEST(Registry, ResolveOnceSharesTheCell) {
  obs::Registry registry;
  const obs::Counter a = registry.counter("requests_total");
  const obs::Counter b = registry.counter("requests_total");
  a.inc();
  b.inc(4);
  EXPECT_EQ(a.value(), 5u);
  EXPECT_EQ(b.value(), 5u);
  // An inert default-constructed handle is a no-op, not a crash.
  const obs::Counter inert;
  inert.inc();
  EXPECT_EQ(inert.value(), 0u);
}

TEST(Registry, LabelsAreSortedAndDistinguishCells) {
  obs::Registry registry;
  const obs::Counter ab = registry.counter("hits", {{"b", "2"}, {"a", "1"}});
  const obs::Counter ab_sorted = registry.counter("hits", {{"a", "1"}, {"b", "2"}});
  const obs::Counter other = registry.counter("hits", {{"a", "1"}});
  ab.inc(3);
  EXPECT_EQ(ab_sorted.value(), 3u) << "label order must not split the cell";
  EXPECT_EQ(other.value(), 0u);
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  // Sorted by (name, labels): the single-label cell sorts first.
  EXPECT_EQ(snapshot.counters[0].labels.size(), 1u);
  ASSERT_EQ(snapshot.counters[1].labels.size(), 2u);
  EXPECT_EQ(snapshot.counters[1].labels[0].first, "a");
  EXPECT_EQ(snapshot.counters[1].labels[1].first, "b");
}

TEST(Registry, KindAndBoundsMismatchesThrow) {
  obs::Registry registry;
  (void)registry.counter("metric_a");
  EXPECT_THROW((void)registry.gauge("metric_a"), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("metric_a", {1.0}), std::invalid_argument);
  (void)registry.histogram("metric_h", {1.0, 2.0});
  EXPECT_THROW((void)registry.histogram("metric_h", {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW((void)registry.counter(""), std::invalid_argument);
  EXPECT_THROW((void)registry.histogram("metric_empty", {}), std::invalid_argument);
}

TEST(Registry, HistogramBucketsAreInclusiveNonCumulative) {
  obs::Registry registry;
  const obs::Histogram histogram = registry.histogram("h", {1.0, 10.0});
  histogram.observe(0.5);   // le=1 bucket.
  histogram.observe(1.0);   // Inclusive upper bound: still the le=1 bucket.
  histogram.observe(5.0);   // le=10 bucket.
  histogram.observe(99.0);  // +Inf bucket, never clamped into le=10.
  const obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  const obs::HistogramSample& sample = snapshot.histograms.front();
  ASSERT_EQ(sample.counts.size(), 3u);
  EXPECT_EQ(sample.counts[0], 2u);
  EXPECT_EQ(sample.counts[1], 1u);
  EXPECT_EQ(sample.counts[2], 1u);
  EXPECT_EQ(sample.count, 4u);
  EXPECT_DOUBLE_EQ(sample.sum, 105.5);
}

TEST(Registry, ResetZeroesButHandlesStayLive) {
  obs::Registry registry;
  const obs::Counter counter = registry.counter("c");
  const obs::Gauge gauge = registry.gauge("g");
  const obs::Histogram histogram = registry.histogram("h", {1.0});
  counter.inc(3);
  gauge.set(7.0);
  histogram.observe(0.5);
  registry.reset();
  EXPECT_EQ(counter.value(), 0u);
  EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
  EXPECT_EQ(histogram.count(), 0u);
  counter.inc();
  EXPECT_EQ(counter.value(), 1u);
  EXPECT_EQ(registry.snapshot().counters.size(), 1u) << "instruments survive reset";
}

TEST(Registry, RemoveLabeledZeroesHidesAndRevives) {
  obs::Registry registry;
  const obs::Counter ok = registry.counter("requests", {{"collection", "c1"}});
  const obs::Gauge rows = registry.gauge("rows", {{"collection", "c1"}});
  const obs::Counter other = registry.counter("requests", {{"collection", "c2"}});
  ok.inc(5);
  rows.set(12.0);
  other.inc(2);

  EXPECT_EQ(registry.remove_labeled("collection", "c1"), 2u);
  EXPECT_EQ(registry.remove_labeled("collection", "missing"), 0u);
  obs::MetricsSnapshot snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 1u) << "hidden series leave the snapshot";
  EXPECT_EQ(snapshot.counters[0].labels, (obs::Labels{{"collection", "c2"}}));
  EXPECT_TRUE(snapshot.gauges.empty());

  // Old handles stay safe (the cell is never freed) but the value is gone.
  ok.inc();
  EXPECT_EQ(ok.value(), 1u);

  // Re-resolving the same (name, labels) revives the cell from zero: a
  // dropped-and-recreated collection never double-reports.
  const obs::Counter recreated = registry.counter("requests", {{"collection", "c1"}});
  recreated.inc(3);
  snapshot = registry.snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.labels == obs::Labels{{"collection", "c1"}}) {
      EXPECT_EQ(sample.value, 4u) << "1 (post-hide inc on the old handle) + 3";
    }
  }
}

// --- Trace mechanics -------------------------------------------------------

TEST(Trace, SpansRecordNamesTagsAndNotes) {
  obs::Trace trace{"unit.test"};
  {
    obs::ScopedTraceContext context{&trace};
    ASSERT_EQ(obs::current_trace(), &trace);
    obs::TraceSpan span{"stage-a"};
    EXPECT_TRUE(span.active());
    span.note("items", 3.0);
    span.tag("avx2");
  }
  EXPECT_EQ(obs::current_trace(), nullptr);
  {
    obs::TraceSpan orphan{"never-recorded"};  // No current trace: a no-op.
    EXPECT_FALSE(orphan.active());
  }
  const obs::TraceRecord record = trace.finish();
  EXPECT_EQ(record.root, "unit.test");
  ASSERT_EQ(record.spans.size(), 1u);
  const obs::SpanRecord* span = find_span(record, "stage-a");
  ASSERT_NE(span, nullptr);
  EXPECT_STREQ(span->tag, "avx2");
  EXPECT_DOUBLE_EQ(note_value(*span, "items"), 3.0);
  EXPECT_GE(record.total_ms, span->elapsed_ms);

  const std::string json = obs::to_json(record);
  EXPECT_NE(json.find("\"trace\":\"unit.test\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"name\":\"stage-a\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"items\":3"), std::string::npos) << json;
}

TEST(Trace, ScopedContextNestsAndRestores) {
  obs::Trace outer{"outer"};
  obs::Trace inner{"inner"};
  EXPECT_EQ(obs::current_trace(), nullptr);
  {
    obs::ScopedTraceContext outer_scope{&outer};
    EXPECT_EQ(obs::current_trace(), &outer);
    {
      obs::ScopedTraceContext inner_scope{&inner};
      EXPECT_EQ(obs::current_trace(), &inner);
    }
    EXPECT_EQ(obs::current_trace(), &outer);
    {
      obs::ScopedTraceContext null_scope{nullptr};  // Null install is a no-op.
      EXPECT_EQ(obs::current_trace(), &outer);
    }
    EXPECT_EQ(obs::current_trace(), &outer);
  }
  EXPECT_EQ(obs::current_trace(), nullptr);
}

TEST(Trace, SamplerIsOneInNAndZeroDisables) {
  obs::TraceSampler off{0};
  for (int i = 0; i < 8; ++i) EXPECT_FALSE(off.should_sample());
  obs::TraceSampler always{1};
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(always.should_sample());
  obs::TraceSampler third{3};
  int sampled = 0;
  for (int i = 0; i < 9; ++i) sampled += third.should_sample() ? 1 : 0;
  EXPECT_EQ(sampled, 3);
  third.set_every(0);
  EXPECT_FALSE(third.should_sample());
}

TEST(Trace, SinkIsABoundedRingThatStampsIds) {
  obs::TraceSink sink{2};
  for (int i = 0; i < 3; ++i) {
    obs::Trace trace{"t" + std::to_string(i)};
    sink.record(trace.finish());
  }
  EXPECT_EQ(sink.recorded_total(), 3u);
  const std::vector<obs::TraceRecord> recent = sink.recent();
  ASSERT_EQ(recent.size(), 2u) << "oldest trace evicted";
  EXPECT_EQ(recent[0].root, "t1");
  EXPECT_EQ(recent[0].id, 2u);
  EXPECT_EQ(recent[1].root, "t2");
  EXPECT_EQ(recent[1].id, 3u);
  EXPECT_NE(sink.to_jsonl().find("\"trace\":\"t2\""), std::string::npos);
  sink.clear();
  EXPECT_TRUE(sink.recent().empty());
  EXPECT_EQ(sink.recorded_total(), 3u) << "clear drops traces, not the total";
}

// --- The acceptance gate: refine spans agree with QueryTelemetry -----------

TEST(TracingRefine, SpanSchemaAgreesWithQueryTelemetry) {
  const Blobs blobs = make_blobs(12, 3, 8, 0.5, 137);
  search::EngineConfig config;
  config.num_features = 8;
  config.coarse_bits = 32;
  config.probes = 2;
  config.candidate_factor = 4;
  config.fine_spec = "euclidean";
  auto index = search::make_index("refine", config);
  index->add(blobs.train, blobs.train_labels);

  obs::Trace trace{"serve.query"};
  search::QueryResult result;
  {
    obs::ScopedTraceContext context{&trace};
    result = index->query_one(blobs.queries.front(), 3);
  }
  const obs::TraceRecord record = trace.finish();

  for (const char* name : {"encode", "coarse-sweep", "multi-probe", "nominate",
                           "fine-rerank", "merge"}) {
    EXPECT_NE(find_span(record, name), nullptr) << "missing span " << name;
  }
  const obs::SpanRecord* merge = find_span(record, "merge");
  ASSERT_NE(merge, nullptr);
  const search::QueryTelemetry& telemetry = result.telemetry;
  EXPECT_DOUBLE_EQ(note_value(*merge, "coarse_candidates"),
                   static_cast<double>(telemetry.coarse_candidates));
  EXPECT_DOUBLE_EQ(note_value(*merge, "fine_candidates"),
                   static_cast<double>(telemetry.fine_candidates));
  EXPECT_DOUBLE_EQ(note_value(*merge, "candidates"),
                   static_cast<double>(telemetry.candidates));
  EXPECT_DOUBLE_EQ(note_value(*merge, "energy_j"), telemetry.energy_j);
  EXPECT_DOUBLE_EQ(note_value(*merge, "probes"),
                   static_cast<double>(telemetry.probes_used));
  const obs::SpanRecord* probe = find_span(record, "multi-probe");
  ASSERT_NE(probe, nullptr);
  EXPECT_DOUBLE_EQ(note_value(*probe, "probes"),
                   static_cast<double>(telemetry.probes_used));
  const obs::SpanRecord* fine = find_span(record, "fine-rerank");
  ASSERT_NE(fine, nullptr);
  EXPECT_STREQ(fine->tag, telemetry.kernel);
  EXPECT_DOUBLE_EQ(note_value(*fine, "candidates"),
                   static_cast<double>(telemetry.fine_candidates));
}

// --- Serving layers record into the registry and the sink ------------------

TEST(ServiceObservability, AggregatesKernelProbesEnergyAndTraces) {
  const Blobs blobs = make_blobs(12, 3, 8, 0.5, 31);
  search::EngineConfig config;
  config.num_features = 8;
  config.coarse_bits = 32;
  config.probes = 2;
  config.fine_spec = "euclidean";
  auto index = search::make_index("refine", config);
  index->add(blobs.train, blobs.train_labels);

  serve::QueryServiceConfig service_config;
  service_config.trace_sample = 1;  // Trace every query.
  service_config.cache_capacity = 0;
  serve::QueryService service{*index, service_config};
  const std::uint64_t sink_before = obs::TraceSink::global().recorded_total();
  for (const auto& q : blobs.queries) {
    const serve::QueryResponse response = service.query_one(q, 3);
    ASSERT_EQ(response.status, serve::RequestStatus::kOk);
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, blobs.queries.size());
  EXPECT_GT(stats.probes_total, 0u);
  EXPECT_GT(stats.energy_j_total, 0.0);
  EXPECT_EQ(stats.traces_recorded, blobs.queries.size());
  std::size_t kernel_total = 0;
  for (const auto& [kernel, count] : stats.kernel_queries) {
    EXPECT_FALSE(kernel.empty());
    kernel_total += count;
  }
  EXPECT_EQ(kernel_total, blobs.queries.size());
  EXPECT_EQ(obs::TraceSink::global().recorded_total() - sink_before,
            blobs.queries.size());

  // Every sampled trace carries the serving spans around the engine's.
  const std::vector<obs::TraceRecord> recent = obs::TraceSink::global().recent();
  ASSERT_FALSE(recent.empty());
  const obs::TraceRecord& last = recent.back();
  EXPECT_EQ(last.root, "serve.query");
  for (const char* name : {"queue-wait", "execute", "fine-rerank"}) {
    EXPECT_NE(find_span(last, name), nullptr) << "missing span " << name;
  }

  // The global registry saw the same queries.
  bool found_kernel_counter = false;
  for (const obs::CounterSample& sample : obs::snapshot().counters) {
    if (sample.name == "mcam_queries_by_kernel_total") found_kernel_counter = true;
  }
  EXPECT_TRUE(found_kernel_counter);
}

TEST(StoreObservability, PerCollectionInstrumentsAndRowsGauge) {
  const Blobs blobs = make_blobs(8, 2, 6, 0.5, 53);
  store::ManagerConfig config;
  config.trace_sample = 1;
  store::CollectionManager manager{config};
  manager.create_collection("obs_test_c1", "euclidean");
  (void)manager.add("obs_test_c1", blobs.train, blobs.train_labels);
  for (const auto& q : blobs.queries) {
    const store::StoreResponse response = manager.query_one("obs_test_c1", q, 2);
    ASSERT_EQ(response.status, serve::RequestStatus::kOk);
  }
  const serve::ServiceStats stats = manager.stats("obs_test_c1");
  EXPECT_EQ(stats.completed, blobs.queries.size());
  EXPECT_EQ(stats.traces_recorded, blobs.queries.size());
  std::size_t kernel_total = 0;
  for (const auto& [kernel, count] : stats.kernel_queries) kernel_total += count;
  EXPECT_EQ(kernel_total, blobs.queries.size());

  double rows_gauge = -1.0;
  std::uint64_t ok_requests = 0;
  const obs::MetricsSnapshot snapshot = obs::snapshot();
  for (const obs::GaugeSample& sample : snapshot.gauges) {
    if (sample.name == "mcam_store_rows" &&
        sample.labels == obs::Labels{{"collection", "obs_test_c1"}}) {
      rows_gauge = sample.value;
    }
  }
  for (const obs::CounterSample& sample : snapshot.counters) {
    if (sample.name == "mcam_store_requests_total" &&
        sample.labels ==
            obs::Labels{{"collection", "obs_test_c1"}, {"outcome", "ok"}}) {
      ok_requests = sample.value;
    }
  }
  EXPECT_DOUBLE_EQ(rows_gauge, static_cast<double>(blobs.train.size()));
  EXPECT_GE(ok_requests, blobs.queries.size());

  const std::vector<obs::TraceRecord> recent = obs::TraceSink::global().recent();
  ASSERT_FALSE(recent.empty());
  const obs::TraceRecord& last = recent.back();
  EXPECT_EQ(last.root, "store.obs_test_c1");
  EXPECT_NE(find_span(last, "route"), nullptr);
  EXPECT_NE(find_span(last, "queue-wait"), nullptr);

  EXPECT_TRUE(manager.drop_collection("obs_test_c1"));
}

// The satellite regression: dropping a collection must retire its whole
// {collection=}-labeled series family, and a recreate must restart from
// zero - a drop/recreate cycle never double-reports rows or requests.
TEST(StoreObservability, DroppedCollectionSeriesVanishAndRecreateRestartsAtZero) {
  const Blobs blobs = make_blobs(6, 2, 6, 0.5, 59);
  const obs::Labels want{{"collection", "obs_drop_c1"}};
  const auto rows_gauge = [&]() -> double {
    for (const obs::GaugeSample& sample : obs::snapshot().gauges) {
      if (sample.name == "mcam_store_rows" && sample.labels == want) return sample.value;
    }
    return -1.0;  // No visible series.
  };

  store::CollectionManager manager{store::ManagerConfig{}};
  manager.create_collection("obs_drop_c1", "euclidean");
  (void)manager.add("obs_drop_c1", blobs.train, blobs.train_labels);
  (void)manager.query_one("obs_drop_c1", blobs.queries.front(), 2);
  EXPECT_DOUBLE_EQ(rows_gauge(), static_cast<double>(blobs.train.size()));

  EXPECT_TRUE(manager.drop_collection("obs_drop_c1"));
  EXPECT_DOUBLE_EQ(rows_gauge(), -1.0) << "dropped series must leave the snapshot";
  for (const obs::CounterSample& sample : obs::snapshot().counters) {
    EXPECT_NE(sample.labels, want) << sample.name << " survived the drop";
  }
  for (const obs::HistogramSample& sample : obs::snapshot().histograms) {
    EXPECT_NE(sample.labels, want) << sample.name << " survived the drop";
  }

  // Recreate with fewer rows: the gauge reflects only the new life.
  manager.create_collection("obs_drop_c1", "euclidean");
  (void)manager.add("obs_drop_c1",
                    std::vector<std::vector<float>>{blobs.train.begin(),
                                                    blobs.train.begin() + 3},
                    std::vector<int>{blobs.train_labels.begin(),
                                     blobs.train_labels.begin() + 3});
  EXPECT_DOUBLE_EQ(rows_gauge(), 3.0) << "a recreate must not double-report";
  std::uint64_t ok_requests = 99;
  for (const obs::CounterSample& sample : obs::snapshot().counters) {
    if (sample.name == "mcam_store_requests_total" &&
        sample.labels == obs::Labels{{"collection", "obs_drop_c1"}, {"outcome", "ok"}}) {
      ok_requests = sample.value;
    }
  }
  EXPECT_TRUE(ok_requests == 99 || ok_requests == 0)
      << "request counters restart at zero (got " << ok_requests << ")";
  EXPECT_TRUE(manager.drop_collection("obs_drop_c1"));
}

#endif  // MCAM_OBS_DISABLED

}  // namespace
}  // namespace mcam
