#include "data/dataset.hpp"
#include "data/episode.hpp"
#include "data/omniglot_synth.hpp"
#include "data/uci_synth.hpp"

#include "distance/metrics.hpp"
#include "util/statistics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace mcam::data {
namespace {

TEST(Dataset, ValidateCatchesRaggedRows) {
  Dataset ds;
  ds.name = "bad";
  ds.features = {{1.0f, 2.0f}, {1.0f}};
  ds.labels = {0, 1};
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(Dataset, ValidateCatchesLabelMismatch) {
  Dataset ds;
  ds.features = {{1.0f}};
  ds.labels = {0, 1};
  EXPECT_THROW(ds.validate(), std::logic_error);
}

TEST(Dataset, ClassCountsAndNumClasses) {
  Dataset ds;
  ds.features = {{0.f}, {0.f}, {0.f}};
  ds.labels = {3, 5, 3};
  EXPECT_EQ(ds.num_classes(), 2u);
  EXPECT_EQ(ds.class_count(3), 2u);
  EXPECT_EQ(ds.class_count(5), 1u);
  EXPECT_EQ(ds.class_count(9), 0u);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  const Dataset iris = make_iris(1);
  const SplitDataset split = stratified_split(iris, 0.8, 2);
  EXPECT_EQ(split.train.size() + split.test.size(), iris.size());
  for (int cls = 0; cls < 3; ++cls) {
    EXPECT_EQ(split.train.class_count(cls), 40u);
    EXPECT_EQ(split.test.class_count(cls), 10u);
  }
}

TEST(StratifiedSplit, SmallClassesAppearOnBothSides) {
  const Dataset wq = make_wine_quality_red(1);
  const SplitDataset split = stratified_split(wq, 0.8, 3);
  // Grade 3 has only 10 samples; ceil(0.8*10)=8 train, 2 test.
  EXPECT_EQ(split.train.class_count(3), 8u);
  EXPECT_EQ(split.test.class_count(3), 2u);
}

TEST(StratifiedSplit, DeterministicPerSeed) {
  const Dataset iris = make_iris(1);
  const SplitDataset a = stratified_split(iris, 0.8, 7);
  const SplitDataset b = stratified_split(iris, 0.8, 7);
  EXPECT_EQ(a.train.features, b.train.features);
  const SplitDataset c = stratified_split(iris, 0.8, 8);
  EXPECT_NE(a.train.features, c.train.features);
}

TEST(StratifiedSplit, InvalidFractionThrows) {
  const Dataset iris = make_iris(1);
  EXPECT_THROW((void)stratified_split(iris, 0.0, 1), std::invalid_argument);
  EXPECT_THROW((void)stratified_split(iris, 1.0, 1), std::invalid_argument);
}

TEST(UciSynth, IrisShapeMatchesOriginal) {
  const Dataset iris = make_iris(5);
  EXPECT_EQ(iris.size(), 150u);
  EXPECT_EQ(iris.dim(), 4u);
  EXPECT_EQ(iris.num_classes(), 3u);
  for (int cls = 0; cls < 3; ++cls) EXPECT_EQ(iris.class_count(cls), 50u);
}

TEST(UciSynth, IrisClassGeometry) {
  // Setosa's petal length is far below the other two classes (the defining
  // property of the original data).
  const Dataset iris = make_iris(5);
  double setosa_petal = 0.0;
  double virginica_petal = 0.0;
  for (std::size_t i = 0; i < iris.size(); ++i) {
    if (iris.labels[i] == 0) setosa_petal += iris.features[i][2];
    if (iris.labels[i] == 2) virginica_petal += iris.features[i][2];
  }
  EXPECT_LT(setosa_petal / 50.0, 2.0);
  EXPECT_GT(virginica_petal / 50.0, 5.0);
}

TEST(UciSynth, WineShape) {
  const Dataset wine = make_wine(5);
  EXPECT_EQ(wine.size(), 178u);
  EXPECT_EQ(wine.dim(), 13u);
  EXPECT_EQ(wine.class_count(0), 59u);
  EXPECT_EQ(wine.class_count(1), 71u);
  EXPECT_EQ(wine.class_count(2), 48u);
}

TEST(UciSynth, BreastCancerShapeAndCorrelations) {
  const Dataset cancer = make_breast_cancer(5);
  EXPECT_EQ(cancer.size(), 569u);
  EXPECT_EQ(cancer.dim(), 30u);
  EXPECT_EQ(cancer.class_count(0), 357u);
  EXPECT_EQ(cancer.class_count(1), 212u);
  // Radius (f0) and area (f3) must be strongly correlated via the latent
  // size factor, as in the real data.
  std::vector<double> radius;
  std::vector<double> area;
  for (const auto& row : cancer.features) {
    radius.push_back(row[0]);
    area.push_back(row[3]);
  }
  EXPECT_GT(pearson(radius, area), 0.9);
}

TEST(UciSynth, BreastCancerMalignantLarger) {
  const Dataset cancer = make_breast_cancer(6);
  double benign_radius = 0.0;
  double malignant_radius = 0.0;
  for (std::size_t i = 0; i < cancer.size(); ++i) {
    (cancer.labels[i] == 0 ? benign_radius : malignant_radius) += cancer.features[i][0];
  }
  EXPECT_GT(malignant_radius / 212.0, benign_radius / 357.0 + 3.0);
}

TEST(UciSynth, WineQualityShapeAndImbalance) {
  const Dataset wq = make_wine_quality_red(5);
  EXPECT_EQ(wq.size(), 1599u);
  EXPECT_EQ(wq.dim(), 11u);
  EXPECT_EQ(wq.class_count(5), 681u);
  EXPECT_EQ(wq.class_count(6), 638u);
  EXPECT_EQ(wq.class_count(8), 18u);
}

TEST(UciSynth, WineQualityAlcoholTracksQuality) {
  const Dataset wq = make_wine_quality_red(7);
  double low = 0.0;
  std::size_t n_low = 0;
  double high = 0.0;
  std::size_t n_high = 0;
  for (std::size_t i = 0; i < wq.size(); ++i) {
    if (wq.labels[i] <= 4) {
      low += wq.features[i][10];
      ++n_low;
    } else if (wq.labels[i] >= 7) {
      high += wq.features[i][10];
      ++n_high;
    }
  }
  EXPECT_GT(high / static_cast<double>(n_high), low / static_cast<double>(n_low) + 0.5);
}

TEST(UciSynth, DeterministicPerSeed) {
  EXPECT_EQ(make_iris(9).features, make_iris(9).features);
  EXPECT_NE(make_iris(9).features, make_iris(10).features);
}

TEST(UciSynth, SuiteHasPaperOrder) {
  const auto suite = make_uci_suite(1);
  ASSERT_EQ(suite.size(), 4u);
  EXPECT_EQ(suite[0].name, "iris");
  EXPECT_EQ(suite[1].name, "wine");
  EXPECT_EQ(suite[2].name, "breast_cancer");
  EXPECT_EQ(suite[3].name, "wine_quality_red");
}

TEST(Omniglot, ImageShapeAndRange) {
  const OmniglotGenerator gen{10, OmniglotConfig{}, 3};
  Rng rng{1};
  const Image image = gen.render(0, rng);
  EXPECT_EQ(image.width, 20u);
  EXPECT_EQ(image.height, 20u);
  ASSERT_EQ(image.pixels.size(), 400u);
  for (float p : image.pixels) {
    EXPECT_GE(p, 0.0f);
    EXPECT_LE(p, 1.0f);
  }
}

TEST(Omniglot, ImagesContainInk) {
  const OmniglotGenerator gen{10, OmniglotConfig{}, 3};
  Rng rng{2};
  for (std::size_t cls = 0; cls < 10; ++cls) {
    const Image image = gen.render(cls, rng);
    float total = 0.0f;
    for (float p : image.pixels) total += p;
    EXPECT_GT(total, 5.0f) << "class " << cls << " rendered almost empty";
  }
}

TEST(Omniglot, ClassPoolIsDeterministic) {
  const OmniglotGenerator a{5, OmniglotConfig{}, 7};
  const OmniglotGenerator b{5, OmniglotConfig{}, 7};
  for (std::size_t cls = 0; cls < 5; ++cls) {
    ASSERT_EQ(a.character(cls).strokes.size(), b.character(cls).strokes.size());
    for (std::size_t s = 0; s < a.character(cls).strokes.size(); ++s) {
      EXPECT_FLOAT_EQ(a.character(cls).strokes[s].x0, b.character(cls).strokes[s].x0);
    }
  }
}

TEST(Omniglot, WithinClassCloserThanAcrossClass) {
  // The property the MANN experiments rest on: two drawings of the same
  // character are closer (L2 on pixels) than drawings of different ones,
  // on average.
  const OmniglotGenerator gen{12, OmniglotConfig{}, 11};
  Rng rng{5};
  double within = 0.0;
  double across = 0.0;
  constexpr int kPairs = 30;
  for (int p = 0; p < kPairs; ++p) {
    const std::size_t cls_a = rng.index(12);
    std::size_t cls_b = rng.index(12);
    while (cls_b == cls_a) cls_b = rng.index(12);
    const Image a1 = gen.render(cls_a, rng);
    const Image a2 = gen.render(cls_a, rng);
    const Image b1 = gen.render(cls_b, rng);
    within += distance::euclidean(a1.pixels, a2.pixels);
    across += distance::euclidean(a1.pixels, b1.pixels);
  }
  EXPECT_LT(within, 0.8 * across);
}

TEST(EpisodeSampler, ShapesMatchTask) {
  const OmniglotGenerator gen{20, OmniglotConfig{}, 13};
  const EpisodeSampler sampler{20, [&gen](std::size_t cls, Rng& rng) {
                                 return gen.render(cls, rng).flatten();
                               }};
  Rng rng{9};
  const TaskSpec task{5, 3, 4};
  const Episode episode = sampler.sample(task, rng);
  EXPECT_EQ(episode.support.size(), 15u);
  EXPECT_EQ(episode.support_labels.size(), 15u);
  EXPECT_EQ(episode.query.size(), 20u);
  EXPECT_EQ(episode.query_labels.size(), 20u);
}

TEST(EpisodeSampler, LabelsAreEpisodeLocal) {
  const EpisodeSampler sampler{50, [](std::size_t cls, Rng&) {
                                 return std::vector<float>{static_cast<float>(cls)};
                               }};
  Rng rng{15};
  const TaskSpec task{5, 2, 2};
  const Episode episode = sampler.sample(task, rng);
  std::set<int> support_labels(episode.support_labels.begin(), episode.support_labels.end());
  EXPECT_EQ(support_labels, (std::set<int>{0, 1, 2, 3, 4}));
  // Support and query with the same episode label come from the same class.
  for (std::size_t q = 0; q < episode.query.size(); ++q) {
    for (std::size_t s = 0; s < episode.support.size(); ++s) {
      if (episode.support_labels[s] == episode.query_labels[q]) {
        EXPECT_FLOAT_EQ(episode.support[s][0], episode.query[q][0]);
      }
    }
  }
}

TEST(EpisodeSampler, Validation) {
  EXPECT_THROW((EpisodeSampler{0, [](std::size_t, Rng&) { return std::vector<float>{}; }}),
               std::invalid_argument);
  EXPECT_THROW((EpisodeSampler{5, EpisodeSampler::ClassSampler{}}), std::invalid_argument);
  const EpisodeSampler sampler{5, [](std::size_t, Rng&) {
                                 return std::vector<float>{0.0f};
                               }};
  Rng rng{1};
  EXPECT_THROW((void)sampler.sample(TaskSpec{10, 1, 1}, rng), std::invalid_argument);
  EXPECT_THROW((void)sampler.sample(TaskSpec{2, 0, 1}, rng), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::data
