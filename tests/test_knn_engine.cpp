#include "search/engine.hpp"
#include "search/knn.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::search {
namespace {

/// Two well-separated Gaussian blobs in 8 dimensions.
struct Blobs {
  std::vector<std::vector<float>> train;
  std::vector<int> train_labels;
  std::vector<std::vector<float>> test;
  std::vector<int> test_labels;
};

Blobs make_blobs(std::size_t per_class, double spread, std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  const auto sample = [&rng, spread](int cls) {
    std::vector<float> v(8);
    for (std::size_t i = 0; i < 8; ++i) {
      const double center = cls == 0 ? 1.0 : (i % 2 == 0 ? 4.0 : -2.0);
      v[i] = static_cast<float>(rng.normal(center, spread));
    }
    return v;
  };
  for (int cls = 0; cls < 2; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      blobs.train.push_back(sample(cls));
      blobs.train_labels.push_back(cls);
      blobs.test.push_back(sample(cls));
      blobs.test_labels.push_back(cls);
    }
  }
  return blobs;
}

TEST(ExactNnIndex, NearestMatchesBruteForce) {
  Rng rng{3};
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  std::vector<std::vector<float>> rows;
  for (int r = 0; r < 50; ++r) {
    std::vector<float> v(4);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    rows.push_back(v);
    index.add(v, r);
  }
  for (int q = 0; q < 20; ++q) {
    std::vector<float> query(4);
    for (auto& x : query) x = static_cast<float>(rng.normal());
    const Neighbor found = index.nearest(query);
    double best = 1e30;
    std::size_t best_idx = 0;
    for (std::size_t r = 0; r < rows.size(); ++r) {
      const double d = distance::euclidean(query, rows[r]);
      if (d < best) {
        best = d;
        best_idx = r;
      }
    }
    EXPECT_EQ(found.index, best_idx);
    EXPECT_NEAR(found.distance, best, 1e-9);
  }
}

TEST(ExactNnIndex, KNearestSortedAndDistinct) {
  Rng rng{5};
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  for (int r = 0; r < 30; ++r) {
    std::vector<float> v(3);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    index.add(v, r % 3);
  }
  const std::vector<float> query{0.0f, 0.0f, 0.0f};
  const auto neighbors = index.k_nearest(query, 7);
  ASSERT_EQ(neighbors.size(), 7u);
  for (std::size_t i = 1; i < neighbors.size(); ++i) {
    EXPECT_GE(neighbors[i].distance, neighbors[i - 1].distance);
    EXPECT_NE(neighbors[i].index, neighbors[i - 1].index);
  }
}

TEST(ExactNnIndex, KLargerThanSizeClamps) {
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  index.add({0.0f}, 0);
  index.add({1.0f}, 1);
  EXPECT_EQ(index.k_nearest(std::vector<float>{0.2f}, 10).size(), 2u);
}

TEST(ExactNnIndex, KNearestFollowsTheOneKConvention) {
  // Regression (k-convention drift): every query_one normalized k = 0 to
  // 1-NN while k_nearest returned {} - so the same logical query could
  // produce two different answers (and two service-cache entries) under
  // k = 0 and k = 1. One contract now (search/index.hpp): k is clamped to
  // [1, size()], and only an empty index yields no neighbors.
  ExactNnIndex empty{distance::metric_by_name("euclidean")};
  EXPECT_TRUE(empty.k_nearest(std::vector<float>{1.0f}, 3).empty());
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  index.add({0.0f}, 0);
  const auto zero_k = index.k_nearest(std::vector<float>{1.0f}, 0);
  const auto one_k = index.k_nearest(std::vector<float>{1.0f}, 1);
  ASSERT_EQ(zero_k.size(), 1u);
  EXPECT_EQ(zero_k.front().index, one_k.front().index);
  EXPECT_EQ(zero_k.front().distance, one_k.front().distance);
}

TEST(ExactNnIndex, KNearestTiesBreakByInsertionOrder) {
  // Regression: duplicate vectors are exact distance ties; the ordering
  // must be the deterministic insertion order, not partial_sort whim.
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  index.add({1.0f}, 10);
  index.add({1.0f}, 11);
  index.add({1.0f}, 12);
  index.add({5.0f}, 13);
  const auto neighbors = index.k_nearest(std::vector<float>{1.0f}, 3);
  ASSERT_EQ(neighbors.size(), 3u);
  EXPECT_EQ(neighbors[0].index, 0u);
  EXPECT_EQ(neighbors[1].index, 1u);
  EXPECT_EQ(neighbors[2].index, 2u);
}

TEST(ExactNnIndex, ClassifyGuardsDegenerateK) {
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  EXPECT_THROW((void)index.classify(std::vector<float>{1.0f}, 1), std::logic_error);
  index.add({0.0f}, 3);
  index.add({1.0f}, 4);
  // k = 0 degenerates to 1-NN instead of voting over nothing.
  EXPECT_EQ(index.classify(std::vector<float>{0.1f}, 0), 3);
  // k beyond size clamps.
  EXPECT_EQ(index.classify(std::vector<float>{0.1f}, 50), 3);
}

TEST(ExactNnIndex, ClassifyMajorityVote) {
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  index.add({0.0f}, 7);
  index.add({0.1f}, 7);
  index.add({0.2f}, 9);
  EXPECT_EQ(index.classify(std::vector<float>{0.05f}, 3), 7);
}

TEST(ExactNnIndex, ClassifyK1IsNearestLabel) {
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  index.add({0.0f}, 1);
  index.add({1.0f}, 2);
  EXPECT_EQ(index.classify(std::vector<float>{0.9f}, 1), 2);
}

TEST(ExactNnIndex, Validation) {
  EXPECT_THROW((ExactNnIndex{distance::Metric{}}), std::invalid_argument);
  ExactNnIndex index{distance::metric_by_name("euclidean")};
  EXPECT_THROW((void)index.nearest(std::vector<float>{1.0f}), std::logic_error);
  index.add({1.0f, 2.0f}, 0);
  EXPECT_THROW((void)index.add({1.0f}, 1), std::invalid_argument);
}

TEST(SoftwareNnEngine, PerfectOnSeparableBlobs) {
  const Blobs blobs = make_blobs(20, 0.3, 7);
  SoftwareNnEngine engine{"euclidean"};
  engine.add(blobs.train, blobs.train_labels);
  EXPECT_DOUBLE_EQ(engine.accuracy(blobs.test, blobs.test_labels), 1.0);
}

TEST(SoftwareNnEngine, UnknownMetricThrowsAtConstruction) {
  EXPECT_THROW((SoftwareNnEngine{"nope"}), std::invalid_argument);
}

TEST(SoftwareNnEngine, PredictBeforeFitThrows) {
  SoftwareNnEngine engine{"cosine"};
  EXPECT_THROW((void)engine.query_one(std::vector<float>{1.0f}, 1), std::logic_error);
}

TEST(McamNnEngine, MatchesSoftwareOnSeparableBlobs) {
  const Blobs blobs = make_blobs(20, 0.3, 9);
  McamNnEngine engine{};
  engine.add(blobs.train, blobs.train_labels);
  EXPECT_GE(engine.accuracy(blobs.test, blobs.test_labels), 0.97);
}

TEST(McamNnEngine, TwoBitStillSeparatesEasyBlobs) {
  const Blobs blobs = make_blobs(20, 0.3, 11);
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{2};
  McamNnEngine engine{config};
  engine.add(blobs.train, blobs.train_labels);
  EXPECT_GE(engine.accuracy(blobs.test, blobs.test_labels), 0.95);
}

TEST(McamNnEngine, FixedQuantizerIsUsed) {
  const Blobs blobs = make_blobs(10, 0.3, 13);
  McamNnEngine engine{};
  encoding::UniformQuantizer quantizer = encoding::UniformQuantizer::fit(blobs.train, 3);
  engine.set_fixed_quantizer(quantizer);
  // Fitting on a *single* support row would normally produce degenerate
  // ranges; the fixed quantizer avoids that.
  const std::vector<std::vector<float>> support{blobs.train[0], blobs.train.back()};
  const std::vector<int> support_labels{0, 1};
  engine.add(support, support_labels);
  EXPECT_EQ(engine.query_one(blobs.test[0], 1).label, 0);
  EXPECT_EQ(engine.query_one(blobs.test.back(), 1).label, 1);
}

TEST(McamNnEngine, FixedQuantizerBitsMismatchThrows) {
  const Blobs blobs = make_blobs(5, 0.3, 15);
  McamNnEngine engine{};  // 3-bit default.
  EXPECT_THROW(engine.set_fixed_quantizer(encoding::UniformQuantizer::fit(blobs.train, 2)),
               std::invalid_argument);
}

TEST(McamNnEngine, NameReflectsBits) {
  McamNnEngine engine3{};
  EXPECT_EQ(engine3.name(), "3-bit MCAM");
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{2};
  McamNnEngine engine2{config};
  EXPECT_EQ(engine2.name(), "2-bit MCAM");
}

TEST(TcamLshEngine, SeparatesEasyBlobsWithManyBits) {
  const Blobs blobs = make_blobs(20, 0.3, 17);
  TcamLshEngine engine{256, 23};
  engine.add(blobs.train, blobs.train_labels);
  EXPECT_GE(engine.accuracy(blobs.test, blobs.test_labels), 0.95);
}

TEST(TcamLshEngine, FewBitsLoseAccuracy) {
  const Blobs blobs = make_blobs(40, 1.2, 19);
  TcamLshEngine wide{512, 23};
  TcamLshEngine narrow{8, 23};
  wide.add(blobs.train, blobs.train_labels);
  narrow.add(blobs.train, blobs.train_labels);
  EXPECT_GT(wide.accuracy(blobs.test, blobs.test_labels),
            narrow.accuracy(blobs.test, blobs.test_labels));
}

TEST(TcamLshEngine, NameIncludesBits) {
  TcamLshEngine engine{64, 1};
  EXPECT_EQ(engine.name(), "TCAM+LSH (64b)");
}

TEST(TcamLshEngine, PredictBeforeFitThrows) {
  TcamLshEngine engine{64, 1};
  EXPECT_THROW((void)engine.query_one(std::vector<float>{1.0f}, 1), std::logic_error);
}

TEST(Engines, AccuracyValidatesSpans) {
  SoftwareNnEngine engine{"euclidean"};
  const Blobs blobs = make_blobs(5, 0.3, 21);
  engine.add(blobs.train, blobs.train_labels);
  const std::vector<int> short_labels{0};
  EXPECT_THROW((void)engine.accuracy(blobs.test, short_labels), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::search
