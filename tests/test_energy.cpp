#include "energy/model.hpp"

#include "experiments/stack.hpp"

#include <gtest/gtest.h>

namespace mcam::energy {
namespace {

class EnergyTest : public ::testing::Test {
 protected:
  EnergyTest() : model_(ArrayParams{}), end_to_end_(GpuBaselineParams{}, model_) {}

  experiments::Stack stack_;
  ArrayEnergyModel model_;
  MannEndToEndModel end_to_end_;
};

TEST_F(EnergyTest, McamSearchEnergyRoughlyFiftySixPercentHigher) {
  // Sec. IV-C: "the average energy of search is 56% higher for the MCAM due
  // to higher search voltages". Structural origin: both MCAM rails swing to
  // analog levels (mean square 2 * E[v^2] = 1.56 V^2 for the 3-bit map)
  // vs one TCAM rail at 1.0 V.
  const auto map = stack_.level_map(3);
  const double tcam = model_.tcam_search_energy(25, 64);
  const double mcam = model_.mcam_search_energy(25, 64, map);
  const double overhead = mcam / tcam - 1.0;
  EXPECT_GT(overhead, 0.35);
  EXPECT_LT(overhead, 0.65);
}

TEST_F(EnergyTest, McamProgramEnergyLowerThanTcam) {
  // Sec. IV-C: "average programming energy of the MCAM is 12% lower than
  // the TCAM, due to lower programming voltages" (intermediate levels use
  // amplitudes below the saturation write).
  const double tcam = model_.tcam_program_energy(25, 64, stack_.pulse_scheme());
  const double mcam = model_.mcam_program_energy(25, 64, stack_.programmer(3));
  EXPECT_LT(mcam, tcam);
  const double saving = 1.0 - mcam / tcam;
  EXPECT_GT(saving, 0.05);
  EXPECT_LT(saving, 0.35);
}

TEST_F(EnergyTest, DelaysIdenticalForBothFlavors) {
  // Same cell, same sensing scheme, same pulse widths -> same delays.
  EXPECT_DOUBLE_EQ(model_.search_delay(), model_.search_delay());
  EXPECT_DOUBLE_EQ(model_.program_delay(),
                   ArrayParams{}.erase_width_s + ArrayParams{}.program_width_s);
}

TEST_F(EnergyTest, SearchEnergyScalesWithArraySize) {
  const auto map = stack_.level_map(3);
  EXPECT_GT(model_.mcam_search_energy(50, 64, map), model_.mcam_search_energy(25, 64, map));
  EXPECT_GT(model_.tcam_search_energy(25, 128), model_.tcam_search_energy(25, 64));
}

TEST_F(EnergyTest, TwoBitSearchCheaperThanThreeBit) {
  // Lower mean-square input voltage on the coarser map? The 2-bit inputs
  // (480..1200 mV) have nearly the same mean square; verify both are close
  // (the scheme's cost is level-map, not bit-count, driven).
  const double e2 = model_.mcam_search_energy(25, 64, stack_.level_map(2));
  const double e3 = model_.mcam_search_energy(25, 64, stack_.level_map(3));
  EXPECT_NEAR(e2 / e3, 1.0, 0.05);
}

TEST_F(EnergyTest, EndToEndGainsMatchPaperBand) {
  // Sec. IV-C: 4.4x energy and 4.5x latency end-to-end vs the Jetson TX2
  // baseline, bound by the feature-extraction part, for BOTH CAM flavors.
  const auto map = stack_.level_map(3);
  const MannCost tcam = end_to_end_.tcam_cost(25, 64);
  const MannCost mcam = end_to_end_.mcam_cost(25, 64, map);
  EXPECT_NEAR(end_to_end_.latency_gain(tcam), 4.5, 0.2);
  EXPECT_NEAR(end_to_end_.latency_gain(mcam), 4.5, 0.2);
  EXPECT_NEAR(end_to_end_.energy_gain(tcam), 4.4, 0.2);
  EXPECT_NEAR(end_to_end_.energy_gain(mcam), 4.4, 0.2);
}

TEST_F(EnergyTest, EndToEndBoundByFeatureExtraction) {
  // Even a zero-cost search cannot beat total/feature: the NN part bounds
  // the gain (the paper's explanation for TCAM == MCAM end-to-end).
  const GpuBaselineParams gpu;
  const double bound = (gpu.feature_latency_s + gpu.search_latency_s) / gpu.feature_latency_s;
  const auto map = stack_.level_map(3);
  EXPECT_LE(end_to_end_.latency_gain(end_to_end_.mcam_cost(25, 64, map)), bound);
  EXPECT_GT(end_to_end_.latency_gain(end_to_end_.mcam_cost(25, 64, map)), 0.98 * bound);
}

TEST_F(EnergyTest, McamAndTcamEndToEndNearlyEqualDespiteSearchGap) {
  // +56% search energy disappears at the application level because the CAM
  // search is ~6 orders below the feature extraction cost.
  const auto map = stack_.level_map(3);
  const double tcam_gain = end_to_end_.energy_gain(end_to_end_.tcam_cost(25, 64));
  const double mcam_gain = end_to_end_.energy_gain(end_to_end_.mcam_cost(25, 64, map));
  EXPECT_NEAR(tcam_gain / mcam_gain, 1.0, 1e-3);
}

TEST_F(EnergyTest, AnalogInversionCostsHundredSearches) {
  const auto map = stack_.level_map(3);
  EXPECT_DOUBLE_EQ(model_.analog_inversion_energy(25, 64, map),
                   kAnalogInversionSearchMultiple * model_.mcam_search_energy(25, 64, map));
}

TEST_F(EnergyTest, GpuCostBreakdownSums) {
  const MannCost gpu = end_to_end_.gpu_cost();
  EXPECT_DOUBLE_EQ(gpu.total_latency_s(), gpu.feature_latency_s + gpu.search_latency_s);
  EXPECT_DOUBLE_EQ(gpu.total_energy_j(), gpu.feature_energy_j + gpu.search_energy_j);
}

TEST_F(EnergyTest, CamSearchOrdersOfMagnitudeBelowGpu) {
  const auto map = stack_.level_map(3);
  const MannCost mcam = end_to_end_.mcam_cost(25, 64, map);
  EXPECT_LT(mcam.search_energy_j, 1e-6 * GpuBaselineParams{}.search_energy_j);
  EXPECT_LT(mcam.search_latency_s, 1e-4 * GpuBaselineParams{}.search_latency_s);
}

}  // namespace
}  // namespace mcam::energy
