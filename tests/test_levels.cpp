#include "fefet/levels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace mcam::fefet {
namespace {

TEST(LevelMap, DefaultIsPaperThreeBitMap) {
  const LevelMap map;
  EXPECT_EQ(map.bits(), 3u);
  EXPECT_EQ(map.num_states(), 8u);
  EXPECT_NEAR(map.window(), 0.120, 1e-12);
  EXPECT_NEAR(map.center(), 0.840, 1e-12);
  EXPECT_NEAR(map.v_min(), 0.360, 1e-12);
  EXPECT_NEAR(map.v_max(), 1.320, 1e-12);
}

TEST(LevelMap, PaperBoundaryValues) {
  const LevelMap map{3};
  // Fig. 3(b): boundaries 360..1320 mV in 120 mV steps.
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_NEAR(map.lower_boundary(s), 0.360 + 0.120 * static_cast<double>(s), 1e-12);
    EXPECT_NEAR(map.upper_boundary(s), 0.480 + 0.120 * static_cast<double>(s), 1e-12);
  }
}

TEST(LevelMap, PaperInputVoltages) {
  const LevelMap map{3};
  // Fig. 3(b): inputs 420..1260 mV in 120 mV steps.
  for (std::size_t s = 0; s < 8; ++s) {
    EXPECT_NEAR(map.input_voltage(s), 0.420 + 0.120 * static_cast<double>(s), 1e-12);
  }
}

TEST(LevelMap, InputsClosedUnderInversion) {
  // Sec. III-A: the collection of input signals equals the collection of
  // their inverses, so no analog inverter is needed.
  const LevelMap map{3};
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    const double inverse = map.invert(map.input_voltage(s));
    EXPECT_NEAR(inverse, map.input_voltage(map.num_states() - 1 - s), 1e-12);
  }
}

TEST(LevelMap, ProgrammableLevelsClosedUnderInversion) {
  const LevelMap map{3};
  const std::vector<double> levels = map.programmable_vth_levels();
  ASSERT_EQ(levels.size(), 8u);
  // Left FeFET targets are inversions of lower boundaries and must land on
  // the same 8-value set.
  std::multiset<long> set;
  for (double v : levels) set.insert(std::lround(v * 1e6));
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    const long left = std::lround(map.left_fefet_vth(s) * 1e6);
    EXPECT_TRUE(set.count(left)) << "left target " << left << " not programmable";
  }
}

TEST(LevelMap, LeftRightVthBoundTheWindow) {
  const LevelMap map{3};
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    EXPECT_NEAR(map.right_fefet_vth(s), map.upper_boundary(s), 1e-12);
    EXPECT_NEAR(map.left_fefet_vth(s), map.invert(map.lower_boundary(s)), 1e-12);
  }
}

TEST(LevelMap, TwoBitMergesNeighboringStates) {
  // Sec. III-A: a 2-bit cell combines neighboring 3-bit states; inputs sit
  // in the middle of the merged windows.
  const LevelMap map2{2};
  const LevelMap map3{3};
  EXPECT_NEAR(map2.window(), 2.0 * map3.window(), 1e-12);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_NEAR(map2.lower_boundary(s), map3.lower_boundary(2 * s), 1e-12);
    EXPECT_NEAR(map2.upper_boundary(s), map3.upper_boundary(2 * s + 1), 1e-12);
  }
}

TEST(LevelMap, StateOfInputRoundTrips) {
  const LevelMap map{3};
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    EXPECT_EQ(map.state_of_input(map.input_voltage(s)), s);
  }
}

TEST(LevelMap, StateOfInputClampsOutOfRange) {
  const LevelMap map{3};
  EXPECT_EQ(map.state_of_input(-1.0), 0u);
  EXPECT_EQ(map.state_of_input(5.0), 7u);
}

TEST(LevelMap, InvalidConstructionThrows) {
  EXPECT_THROW((LevelMap{0}), std::invalid_argument);
  EXPECT_THROW((LevelMap{7}), std::invalid_argument);
  EXPECT_THROW((LevelMap{3, 1.0, 0.5}), std::invalid_argument);
}

TEST(LevelMap, OutOfRangeStateThrows) {
  const LevelMap map{2};
  EXPECT_THROW((void)map.lower_boundary(4), std::out_of_range);
  EXPECT_THROW((void)map.input_voltage(4), std::out_of_range);
}

/// Property sweep over all supported widths.
class LevelMapProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(LevelMapProperty, WindowsTileTheRangeWithoutOverlap) {
  const LevelMap map{GetParam()};
  for (std::size_t s = 0; s + 1 < map.num_states(); ++s) {
    EXPECT_NEAR(map.upper_boundary(s), map.lower_boundary(s + 1), 1e-12);
  }
  EXPECT_NEAR(map.lower_boundary(0), map.v_min(), 1e-12);
  EXPECT_NEAR(map.upper_boundary(map.num_states() - 1), map.v_max(), 1e-12);
}

TEST_P(LevelMapProperty, InputsAreWindowCenters) {
  const LevelMap map{GetParam()};
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    EXPECT_NEAR(map.input_voltage(s),
                0.5 * (map.lower_boundary(s) + map.upper_boundary(s)), 1e-12);
  }
}

TEST_P(LevelMapProperty, InversionIsInvolution) {
  const LevelMap map{GetParam()};
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    const double v = map.input_voltage(s);
    EXPECT_NEAR(map.invert(map.invert(v)), v, 1e-12);
  }
}

TEST_P(LevelMapProperty, ProgrammableLevelCountEqualsStates) {
  const LevelMap map{GetParam()};
  EXPECT_EQ(map.programmable_vth_levels().size(), map.num_states());
}

INSTANTIATE_TEST_SUITE_P(AllWidths, LevelMapProperty, ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace mcam::fefet
