#include "fefet/programming.hpp"

#include "fefet/levels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::fefet {
namespace {

PulseProgrammer make_programmer(unsigned bits = 3, PulseScheme scheme = PulseScheme{}) {
  const LevelMap map{bits};
  return PulseProgrammer{map.programmable_vth_levels(), PreisachParams{}, VthMap{}, scheme};
}

TEST(PulseProgrammer, CalibrationHitsTargetsOnNominalDevice) {
  const PulseProgrammer programmer = make_programmer();
  // With 40 quantile hysterons the 8 targets are exactly representable
  // (multiples of 1/8 of the polarization range).
  for (std::size_t level = 0; level < programmer.num_levels(); ++level) {
    FefetDevice device;
    programmer.program(device, level);
    EXPECT_NEAR(device.vth(), programmer.target(level), 0.015)
        << "level " << level << " amplitude " << programmer.amplitude(level);
  }
}

TEST(PulseProgrammer, AmplitudesDecreaseWithTargetVth) {
  // Lower Vth targets require more switched domains, hence stronger pulses.
  const PulseProgrammer programmer = make_programmer();
  for (std::size_t level = 0; level + 1 < programmer.num_levels(); ++level) {
    // Targets ascend (0.48 .. 1.32 V) so amplitudes must descend.
    EXPECT_LT(programmer.target(level), programmer.target(level + 1));
    EXPECT_GT(programmer.amplitude(level), programmer.amplitude(level + 1));
  }
}

TEST(PulseProgrammer, AmplitudesWithinSchemeWindow) {
  const PulseProgrammer programmer = make_programmer();
  for (std::size_t level = 0; level < programmer.num_levels(); ++level) {
    const double amp = programmer.amplitude(level);
    if (amp == PulseProgrammer::kNoPulse) continue;  // Erase-only level.
    EXPECT_GE(amp, PulseScheme{}.v_program_min - 1e-9);
    EXPECT_LE(amp, PulseScheme{}.v_program_max + 1e-9);
  }
}

TEST(PulseProgrammer, HighestLevelNeedsNoPulse) {
  // The erased state *is* the highest Vth level; the calibrator must mark
  // it as erase-only rather than firing a pulse that would disturb it.
  const PulseProgrammer programmer = make_programmer();
  EXPECT_EQ(programmer.amplitude(programmer.num_levels() - 1), PulseProgrammer::kNoPulse);
}

TEST(PulseProgrammer, DacStepQuantizesAmplitudes) {
  PulseScheme scheme;
  scheme.v_program_step = 0.1;  // The experimental 0.1 V DAC (Sec. IV-D).
  const PulseProgrammer programmer = make_programmer(3, scheme);
  for (std::size_t level = 0; level < programmer.num_levels(); ++level) {
    const double steps = (programmer.amplitude(level) - scheme.v_program_min) / 0.1;
    EXPECT_NEAR(steps, std::round(steps), 1e-6);
  }
}

TEST(PulseProgrammer, DacQuantizationBoundsVthError) {
  PulseScheme scheme;
  scheme.v_program_step = 0.1;
  const PulseProgrammer programmer = make_programmer(3, scheme);
  for (std::size_t level = 0; level < programmer.num_levels(); ++level) {
    FefetDevice device;
    programmer.program(device, level);
    // 0.1 V of amplitude moves at most a few domains: stay within half a
    // level window (60 mV).
    EXPECT_NEAR(device.vth(), programmer.target(level), 0.060);
  }
}

TEST(PulseProgrammer, UnreachableTargetThrows) {
  const LevelMap map{3};
  std::vector<double> targets = map.programmable_vth_levels();
  targets.push_back(0.05);  // Below what v_program_max can reach.
  EXPECT_THROW(
      (PulseProgrammer{targets, PreisachParams{}, VthMap{}, PulseScheme{}}),
      std::invalid_argument);
}

TEST(PulseProgrammer, TargetAboveErasedThrows) {
  std::vector<double> targets{1.5};  // Above the erased Vth of 1.32 V.
  EXPECT_THROW(
      (PulseProgrammer{targets, PreisachParams{}, VthMap{}, PulseScheme{}}),
      std::invalid_argument);
}

TEST(PulseProgrammer, EmptyTargetsThrow) {
  EXPECT_THROW((PulseProgrammer{{}, PreisachParams{}, VthMap{}, PulseScheme{}}),
               std::invalid_argument);
}

TEST(PulseProgrammer, LevelIndexOutOfRangeThrows) {
  const PulseProgrammer programmer = make_programmer(2);
  FefetDevice device;
  EXPECT_THROW(programmer.program(device, 4), std::out_of_range);
  EXPECT_THROW((void)programmer.amplitude(4), std::out_of_range);
  EXPECT_THROW((void)programmer.target(4), std::out_of_range);
}

TEST(PulseProgrammer, ReprogrammingMovesBetweenLevels) {
  const PulseProgrammer programmer = make_programmer();
  FefetDevice device;
  programmer.program(device, 0);
  EXPECT_NEAR(device.vth(), programmer.target(0), 0.02);
  programmer.program(device, 6);
  EXPECT_NEAR(device.vth(), programmer.target(6), 0.02);
  programmer.program(device, 3);
  EXPECT_NEAR(device.vth(), programmer.target(3), 0.02);
}

TEST(PulseProgrammer, MonteCarloDevicesSpreadAroundTarget) {
  const PulseProgrammer programmer = make_programmer();
  Rng rng{77};
  double spread = 0.0;
  constexpr int kDevices = 24;
  for (int d = 0; d < kDevices; ++d) {
    FefetDevice device{PreisachParams{}, ChannelParams{}, VthMap{},
                       SamplingMode::kMonteCarlo, rng.fork(d)};
    programmer.program(device, 3);
    spread += std::fabs(device.vth() - programmer.target(3));
  }
  // Variation exists but stays well below a level window.
  EXPECT_GT(spread / kDevices, 0.005);
  EXPECT_LT(spread / kDevices, 0.120);
}

TEST(PulseProgrammer, WriteVerifyTightensVth) {
  const PulseProgrammer programmer = make_programmer();
  Rng rng{99};
  constexpr double kTol = 0.02;
  int verified = 0;
  for (int d = 0; d < 16; ++d) {
    FefetDevice device{PreisachParams{}, ChannelParams{}, VthMap{},
                       SamplingMode::kMonteCarlo, rng.fork(d)};
    const auto pulses = programmer.program_with_verify(device, 4, kTol, 32);
    if (pulses.has_value()) {
      ++verified;
      EXPECT_NEAR(device.vth(), programmer.target(4), kTol);
      EXPECT_GE(*pulses, 1u);
    }
  }
  // The verify loop should succeed for most devices.
  EXPECT_GE(verified, 10);
}

TEST(PulseProgrammer, WriteVerifyOnNominalDeviceIsQuick) {
  const PulseProgrammer programmer = make_programmer();
  FefetDevice device;
  const auto pulses = programmer.program_with_verify(device, 2, 0.02, 16);
  ASSERT_TRUE(pulses.has_value());
  EXPECT_LE(*pulses, 8u);
}

}  // namespace
}  // namespace mcam::fefet
