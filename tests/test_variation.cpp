#include "fefet/variation.hpp"

#include "fefet/levels.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::fefet {
namespace {

class VariationStudyTest : public ::testing::Test {
 protected:
  VariationStudyTest()
      : programmer_(LevelMap{3}.programmable_vth_levels(), PreisachParams{}, VthMap{},
                    PulseScheme{}),
        study_(PreisachParams{}, VthMap{}, programmer_) {}

  PulseProgrammer programmer_;
  VariationStudy study_;
};

TEST_F(VariationStudyTest, ProducesOneDistributionPerState) {
  const auto distributions = study_.run(50, 1);
  ASSERT_EQ(distributions.size(), 8u);
  for (const auto& dist : distributions) {
    EXPECT_EQ(dist.samples.size(), 50u);
  }
}

TEST_F(VariationStudyTest, MeansTrackTargets) {
  const auto distributions = study_.run(150, 2);
  for (const auto& dist : distributions) {
    EXPECT_NEAR(dist.mean, dist.target_vth, 0.030)
        << "state target " << dist.target_vth;
  }
}

TEST_F(VariationStudyTest, SigmaPeaksAtMidLevelsAndStaysUnder100mV) {
  // Fig. 5: unverified single-pulse programming yields sigma up to ~80 mV,
  // largest for intermediate states (binomial domain statistics).
  const auto distributions = study_.run(200, 3);
  const double max_sigma = VariationStudy::max_sigma(distributions);
  EXPECT_GT(max_sigma, 0.040);
  EXPECT_LT(max_sigma, 0.100);
  // The erased-most state (highest Vth, fewest switched domains) is tighter
  // than the mid state.
  EXPECT_LT(distributions.back().sigma, distributions[3].sigma);
}

TEST_F(VariationStudyTest, DeterministicGivenSeed) {
  const auto a = study_.run(30, 42);
  const auto b = study_.run(30, 42);
  for (std::size_t s = 0; s < a.size(); ++s) {
    EXPECT_DOUBLE_EQ(a[s].mean, b[s].mean);
    EXPECT_DOUBLE_EQ(a[s].sigma, b[s].sigma);
  }
}

TEST_F(VariationStudyTest, DifferentSeedsDiffer) {
  const auto a = study_.run(30, 1);
  const auto b = study_.run(30, 2);
  bool any_different = false;
  for (std::size_t s = 0; s < a.size(); ++s) {
    if (a[s].mean != b[s].mean) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST_F(VariationStudyTest, StatesRemainSeparable) {
  // Neighboring state distributions must not collapse into each other:
  // mean gap (120 mV) should exceed the pooled sigma.
  const auto distributions = study_.run(200, 4);
  for (std::size_t s = 0; s + 1 < distributions.size(); ++s) {
    const double gap = distributions[s + 1].mean - distributions[s].mean;
    EXPECT_GT(gap, 0.060) << "states " << s << " and " << s + 1;
  }
}

TEST(GaussianVthSampler, MatchesRequestedSigma) {
  GaussianVthSampler sampler{0.08};
  Rng rng{9};
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(sampler.sample(rng));
  EXPECT_NEAR(stats.mean(), 0.0, 0.002);
  EXPECT_NEAR(stats.stddev(), 0.08, 0.003);
}

TEST(GaussianVthSampler, ZeroSigmaIsNoiseless) {
  GaussianVthSampler sampler{0.0};
  Rng rng{1};
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(sampler.sample(rng), 0.0);
}

}  // namespace
}  // namespace mcam::fefet
