#include "util/linalg.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

namespace mcam {
namespace {

TEST(Linalg, DotAndNorm) {
  const std::vector<float> a{1.0f, 2.0f, 3.0f};
  const std::vector<float> b{4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(dot(a, b), 12.0f);
  EXPECT_FLOAT_EQ(norm2(a), std::sqrt(14.0f));
}

TEST(Linalg, SquaredDistance) {
  const std::vector<float> a{1.0f, 2.0f};
  const std::vector<float> b{4.0f, 6.0f};
  EXPECT_FLOAT_EQ(squared_distance(a, b), 25.0f);
}

TEST(Linalg, L2NormalizeUnitLength) {
  std::vector<float> a{3.0f, 4.0f};
  l2_normalize(a);
  EXPECT_NEAR(norm2(a), 1.0f, 1e-6f);
  EXPECT_NEAR(a[0], 0.6f, 1e-6f);
}

TEST(Linalg, L2NormalizeZeroVectorUntouched) {
  std::vector<float> zero{0.0f, 0.0f};
  l2_normalize(zero);
  EXPECT_FLOAT_EQ(zero[0], 0.0f);
  EXPECT_FLOAT_EQ(zero[1], 0.0f);
}

TEST(Linalg, Axpy) {
  const std::vector<float> x{1.0f, 2.0f};
  std::vector<float> y{10.0f, 20.0f};
  axpy(2.0f, x, y);
  EXPECT_FLOAT_EQ(y[0], 12.0f);
  EXPECT_FLOAT_EQ(y[1], 24.0f);
}

TEST(Linalg, ArgminArgmax) {
  const std::vector<double> xs{3.0, 1.0, 2.0, 1.0};
  EXPECT_EQ(argmin(xs), 1u);  // First minimum wins.
  EXPECT_EQ(argmax(xs), 0u);
  const std::vector<float> fs{0.1f, 0.9f, 0.5f};
  EXPECT_EQ(argmax_f(fs), 1u);
}

TEST(Linalg, ArgminEmptyIsZero) {
  EXPECT_EQ(argmin({}), 0u);
}

TEST(TextTable, RendersAlignedGrid) {
  TextTable table{"demo"};
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bb", "22"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| bb    | 22    |"), std::string::npos);
}

TEST(TextTable, RowWidthMismatchThrows) {
  TextTable table;
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NumericRowFormatsPrecision) {
  TextTable table;
  table.set_header({"label", "x", "y"});
  table.add_numeric_row("row", {1.23456, 2.0}, 2);
  const std::string text = table.to_string();
  EXPECT_NE(text.find("1.23"), std::string::npos);
  EXPECT_NE(text.find("2.00"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable table;
  table.set_header({"a", "b"});
  table.add_row({"x,with,commas", "plain"});
  const std::string path = std::filesystem::temp_directory_path() / "mcam_table_test.csv";
  table.write_csv(path);
  std::ifstream in{path};
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "\"x,with,commas\",plain");
  std::filesystem::remove(path);
}

TEST(TextTable, CsvInvalidPathThrows) {
  TextTable table;
  table.add_row({"x"});
  EXPECT_THROW((void)table.write_csv("/nonexistent-dir-xyz/out.csv"), std::runtime_error);
}

TEST(Format, FormatDouble) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, FormatSiPicksPrefix) {
  EXPECT_EQ(format_si(3.2e-9, "s"), "3.20 ns");
  EXPECT_EQ(format_si(4.5e-15, "J"), "4.50 fJ");
  EXPECT_EQ(format_si(2.0e6, "Hz"), "2.00 MHz");
  EXPECT_EQ(format_si(0.0, "V", 1), "0.0 V");
  EXPECT_EQ(format_si(-1.5e-3, "A"), "-1.50 mA");
}

}  // namespace
}  // namespace mcam
