#include "encoding/lsh.hpp"
#include "encoding/normalize.hpp"
#include "encoding/quantizer.hpp"

#include "distance/metrics.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace mcam::encoding {
namespace {

std::vector<std::vector<float>> toy_rows() {
  return {{0.0f, 10.0f, -1.0f}, {1.0f, 20.0f, 0.0f}, {2.0f, 30.0f, 1.0f},
          {3.0f, 40.0f, 3.0f}};
}

TEST(FeatureScaler, MinMaxMapsToUnitInterval) {
  const auto rows = toy_rows();
  const FeatureScaler scaler = FeatureScaler::fit_min_max(rows);
  for (const auto& row : rows) {
    const auto scaled = scaler.transform(row);
    for (float v : scaled) {
      EXPECT_GE(v, 0.0f);
      EXPECT_LE(v, 1.0f);
    }
  }
  EXPECT_FLOAT_EQ(scaler.transform(rows.front())[0], 0.0f);
  EXPECT_FLOAT_EQ(scaler.transform(rows.back())[0], 1.0f);
}

TEST(FeatureScaler, ZScoreCentersAndScales) {
  const auto rows = toy_rows();
  const FeatureScaler scaler = FeatureScaler::fit_z_score(rows);
  const auto scaled = scaler.transform_all(rows);
  for (std::size_t f = 0; f < 3; ++f) {
    double sum = 0.0;
    double sum_sq = 0.0;
    for (const auto& row : scaled) {
      sum += row[f];
      sum_sq += row[f] * row[f];
    }
    EXPECT_NEAR(sum / 4.0, 0.0, 1e-5);
    EXPECT_NEAR(std::sqrt(sum_sq / 3.0), 1.0, 1e-5);
  }
}

TEST(FeatureScaler, ConstantFeatureIsSafe) {
  const std::vector<std::vector<float>> rows{{5.0f, 1.0f}, {5.0f, 2.0f}};
  const FeatureScaler mm = FeatureScaler::fit_min_max(rows);
  const FeatureScaler zs = FeatureScaler::fit_z_score(rows);
  EXPECT_TRUE(std::isfinite(mm.transform(rows[0])[0]));
  EXPECT_TRUE(std::isfinite(zs.transform(rows[0])[0]));
}

TEST(FeatureScaler, Validation) {
  EXPECT_THROW((void)FeatureScaler::fit_min_max({}), std::invalid_argument);
  const std::vector<std::vector<float>> ragged{{1.0f}, {1.0f, 2.0f}};
  EXPECT_THROW((void)FeatureScaler::fit_min_max(ragged), std::invalid_argument);
  const FeatureScaler scaler = FeatureScaler::fit_min_max(toy_rows());
  EXPECT_THROW((void)scaler.transform(std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(UniformQuantizer, LevelsInRange) {
  const auto rows = toy_rows();
  const UniformQuantizer q = UniformQuantizer::fit(rows, 3);
  for (const auto& row : rows) {
    for (std::uint16_t level : q.quantize(row)) EXPECT_LT(level, 8u);
  }
}

TEST(UniformQuantizer, ExtremesGetExtremeLevels) {
  const auto rows = toy_rows();
  const UniformQuantizer q = UniformQuantizer::fit(rows, 2);
  EXPECT_EQ(q.quantize(rows.front())[1], 0u);
  EXPECT_EQ(q.quantize(rows.back())[1], 3u);
}

TEST(UniformQuantizer, RoundTripErrorBoundedByHalfStep) {
  Rng rng{3};
  std::vector<std::vector<float>> rows;
  for (int r = 0; r < 200; ++r) {
    rows.push_back({static_cast<float>(rng.uniform(0.0, 4.0)),
                    static_cast<float>(rng.uniform(-2.0, 2.0))});
  }
  const UniformQuantizer q = UniformQuantizer::fit(rows, 4);
  // Step = range / 16; dequantized value is the level center.
  for (const auto& row : rows) {
    const auto back = q.dequantize(q.quantize(row));
    EXPECT_NEAR(back[0], row[0], 4.0 / 16.0 * 0.5 + 1e-5);
    EXPECT_NEAR(back[1], row[1], 4.0 / 16.0 * 0.5 + 1e-5);
  }
}

TEST(UniformQuantizer, MoreBitsLowerError) {
  Rng rng{5};
  std::vector<std::vector<float>> rows;
  for (int r = 0; r < 300; ++r) rows.push_back({static_cast<float>(rng.uniform(0.0, 1.0))});
  double err2 = 0.0;
  double err4 = 0.0;
  const UniformQuantizer q2 = UniformQuantizer::fit(rows, 2);
  const UniformQuantizer q4 = UniformQuantizer::fit(rows, 4);
  for (const auto& row : rows) {
    err2 += std::fabs(q2.dequantize(q2.quantize(row))[0] - row[0]);
    err4 += std::fabs(q4.dequantize(q4.quantize(row))[0] - row[0]);
  }
  EXPECT_LT(err4, err2);
}

TEST(UniformQuantizer, ClipPercentileTightensRange) {
  Rng rng{7};
  std::vector<std::vector<float>> rows;
  for (int r = 0; r < 500; ++r) rows.push_back({static_cast<float>(rng.normal(0.0, 1.0))});
  rows.push_back({100.0f});  // One gross outlier.
  const UniformQuantizer loose = UniformQuantizer::fit(rows, 3, 0.0);
  const UniformQuantizer tight = UniformQuantizer::fit(rows, 3, 2.0);
  // Without clipping the outlier eats the top levels: a typical value maps
  // to level 0; with clipping it lands mid-scale.
  const std::vector<float> typical{0.5f};
  EXPECT_EQ(loose.quantize(typical)[0], 0u);
  EXPECT_GT(tight.quantize(typical)[0], 2u);
}

TEST(UniformQuantizer, OutOfFitRangeClamps) {
  const auto rows = toy_rows();
  const UniformQuantizer q = UniformQuantizer::fit(rows, 3);
  EXPECT_EQ(q.quantize(std::vector<float>{-100.0f, -100.0f, -100.0f})[0], 0u);
  EXPECT_EQ(q.quantize(std::vector<float>{100.0f, 100.0f, 100.0f})[0], 7u);
}

TEST(UniformQuantizer, Validation) {
  EXPECT_THROW((void)UniformQuantizer::fit({}, 3), std::invalid_argument);
  EXPECT_THROW((void)UniformQuantizer::fit(toy_rows(), 0), std::invalid_argument);
  EXPECT_THROW((void)UniformQuantizer::fit(toy_rows(), 3, 60.0), std::invalid_argument);
  const UniformQuantizer q = UniformQuantizer::fit(toy_rows(), 3);
  EXPECT_THROW((void)q.quantize(std::vector<float>{1.0f}), std::invalid_argument);
}

TEST(Signature, PackUnpackRoundTrip) {
  RandomHyperplaneLsh lsh{8, 70, 3};
  Rng rng{1};
  std::vector<float> v(8);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  const Signature sig = lsh.encode(v);
  const auto unpacked = sig.unpack();
  ASSERT_EQ(unpacked.size(), 70u);
  for (std::size_t i = 0; i < 70; ++i) {
    EXPECT_EQ(unpacked[i] != 0, sig.bit(i));
  }
}

TEST(Lsh, DeterministicGivenSeed) {
  RandomHyperplaneLsh a{16, 64, 9};
  RandomHyperplaneLsh b{16, 64, 9};
  Rng rng{2};
  std::vector<float> v(16);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  EXPECT_EQ(a.encode(v).words, b.encode(v).words);
}

TEST(Lsh, IdenticalVectorsHaveZeroHamming) {
  RandomHyperplaneLsh lsh{16, 64, 4};
  Rng rng{3};
  std::vector<float> v(16);
  for (auto& x : v) x = static_cast<float>(rng.normal());
  EXPECT_EQ(hamming_distance(lsh.encode(v), lsh.encode(v)), 0u);
}

TEST(Lsh, OppositeVectorsHaveFullHamming) {
  RandomHyperplaneLsh lsh{16, 64, 5};
  Rng rng{4};
  std::vector<float> v(16);
  std::vector<float> neg(16);
  for (std::size_t i = 0; i < 16; ++i) {
    v[i] = static_cast<float>(rng.normal());
    neg[i] = -v[i];
  }
  // Sign flip flips every projection (ties measure zero).
  EXPECT_EQ(hamming_distance(lsh.encode(v), lsh.encode(neg)), 64u);
}

TEST(Lsh, HammingTracksAngle) {
  // Collision probability of sign-LSH is 1 - theta/pi: expected normalized
  // Hamming distance equals theta/pi. Verify within sampling tolerance.
  constexpr std::size_t kBits = 2048;
  RandomHyperplaneLsh lsh{2, kBits, 6};
  const double theta = std::numbers::pi / 3.0;  // 60 degrees.
  const std::vector<float> a{1.0f, 0.0f};
  const std::vector<float> b{static_cast<float>(std::cos(theta)),
                             static_cast<float>(std::sin(theta))};
  const double normalized =
      static_cast<double>(hamming_distance(lsh.encode(a), lsh.encode(b))) / kBits;
  EXPECT_NEAR(normalized, theta / std::numbers::pi, 0.04);
}

TEST(Lsh, MoreBitsBetterCosineApproximation) {
  Rng rng{8};
  const std::size_t dim = 32;
  auto sample = [&rng, dim]() {
    std::vector<float> v(dim);
    for (auto& x : v) x = static_cast<float>(rng.normal());
    return v;
  };
  auto correlation = [&](std::size_t bits) {
    RandomHyperplaneLsh lsh{dim, bits, 11};
    std::vector<double> cos_d;
    std::vector<double> ham_d;
    for (int pair = 0; pair < 120; ++pair) {
      const auto a = sample();
      const auto b = sample();
      cos_d.push_back(distance::cosine(a, b));
      ham_d.push_back(static_cast<double>(hamming_distance(lsh.encode(a), lsh.encode(b))) /
                      static_cast<double>(bits));
    }
    double sxy = 0.0;
    double sxx = 0.0;
    double syy = 0.0;
    const double mx = [&] { double s = 0; for (double x : cos_d) s += x; return s / cos_d.size(); }();
    const double my = [&] { double s = 0; for (double y : ham_d) s += y; return s / ham_d.size(); }();
    for (std::size_t i = 0; i < cos_d.size(); ++i) {
      sxy += (cos_d[i] - mx) * (ham_d[i] - my);
      sxx += (cos_d[i] - mx) * (cos_d[i] - mx);
      syy += (ham_d[i] - my) * (ham_d[i] - my);
    }
    return sxy / std::sqrt(sxx * syy);
  };
  EXPECT_GT(correlation(512), correlation(16));
}

TEST(Lsh, Validation) {
  EXPECT_THROW((RandomHyperplaneLsh{0, 64, 1}), std::invalid_argument);
  EXPECT_THROW((RandomHyperplaneLsh{16, 0, 1}), std::invalid_argument);
  RandomHyperplaneLsh lsh{16, 64, 1};
  EXPECT_THROW((void)lsh.encode(std::vector<float>(8, 0.0f)), std::invalid_argument);
  Signature a;
  a.bits = 8;
  a.words = {0};
  Signature b;
  b.bits = 16;
  b.words = {0};
  EXPECT_THROW((void)hamming_distance(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::encoding
