#include "mann/fewshot.hpp"
#include "mann/memory.hpp"
#include "mann/pipeline.hpp"

#include "data/omniglot_synth.hpp"
#include "ml/trainer.hpp"
#include "search/engine.hpp"

#include <gtest/gtest.h>

namespace mcam::mann {
namespace {

std::unique_ptr<search::NnIndex> make_software_engine() {
  return std::make_unique<search::SoftwareNnEngine>("euclidean");
}

/// Pass-through embedding for pipeline tests that need exact geometry.
class IdentityEmbedding final : public ml::EmbeddingSource {
 public:
  explicit IdentityEmbedding(std::size_t dim) : dim_(dim) {}
  std::vector<float> embed(const std::vector<float>& input) override { return input; }
  [[nodiscard]] std::size_t dim() const override { return dim_; }

 private:
  std::size_t dim_;
};

TEST(FeatureMemory, AllShotsStoresEverySupport) {
  FeatureMemory memory{make_software_engine(), StoragePolicy::kAllShots};
  const std::vector<std::vector<float>> support{{0.0f}, {0.1f}, {1.0f}, {1.1f}};
  const std::vector<int> labels{0, 0, 1, 1};
  memory.store(support, labels);
  EXPECT_EQ(memory.lookup(std::vector<float>{0.05f}), 0);
  EXPECT_EQ(memory.lookup(std::vector<float>{1.05f}), 1);
}

TEST(FeatureMemory, PrototypeAveragesShots) {
  FeatureMemory memory{make_software_engine(), StoragePolicy::kPrototype};
  // Class 0 has one outlier shot at 10; the prototype (mean 3.4) should
  // absorb it, unlike all-shots NN which the outlier would win.
  const std::vector<std::vector<float>> support{{0.0f}, {0.1f}, {10.0f}, {20.0f}, {20.1f}};
  const std::vector<int> labels{0, 0, 0, 1, 1};
  memory.store(support, labels);
  EXPECT_EQ(memory.lookup(std::vector<float>{9.0f}), 0);   // Near class-0 prototype (3.37).
  EXPECT_EQ(memory.lookup(std::vector<float>{16.0f}), 1);  // Near class-1 prototype (20.05).
}

TEST(FeatureMemory, Validation) {
  EXPECT_THROW((FeatureMemory{nullptr, StoragePolicy::kAllShots}), std::invalid_argument);
  FeatureMemory memory{make_software_engine(), StoragePolicy::kAllShots};
  EXPECT_THROW(memory.store({}, {}), std::invalid_argument);
}

TEST(FeatureMemory, EngineNamePassesThrough) {
  FeatureMemory memory{make_software_engine(), StoragePolicy::kAllShots};
  EXPECT_EQ(memory.engine_name(), "euclidean (FP32)");
}

TEST(EvaluateFewShot, PerfectOnSeparableFeatures) {
  // Classes at distinct integer coordinates, tiny noise: accuracy 1.0.
  const data::EpisodeSampler sampler{
      10, [](std::size_t cls, Rng& rng) {
        return std::vector<float>{static_cast<float>(cls) +
                                      static_cast<float>(rng.normal(0.0, 0.01)),
                                  static_cast<float>(rng.normal(0.0, 0.01))};
      }};
  const FewShotResult result = evaluate_few_shot(sampler, data::TaskSpec{5, 1, 4}, 20,
                                                 make_software_engine, 7);
  EXPECT_DOUBLE_EQ(result.accuracy, 1.0);
  EXPECT_EQ(result.episodes, 20u);
  EXPECT_EQ(result.queries, 20u * 20u);
  EXPECT_GE(result.ci95, 0.0);
}

TEST(EvaluateFewShot, ChanceLevelOnUninformativeFeatures) {
  const data::EpisodeSampler sampler{20, [](std::size_t, Rng& rng) {
                                       return std::vector<float>{
                                           static_cast<float>(rng.normal())};
                                     }};
  const FewShotResult result = evaluate_few_shot(sampler, data::TaskSpec{5, 1, 4}, 60,
                                                 make_software_engine, 9);
  EXPECT_NEAR(result.accuracy, 0.2, 0.06);
}

TEST(EvaluateFewShot, DeterministicPerSeed) {
  const data::EpisodeSampler sampler{10, [](std::size_t cls, Rng& rng) {
                                       return std::vector<float>{
                                           static_cast<float>(cls) +
                                           static_cast<float>(rng.normal(0.0, 0.5))};
                                     }};
  const auto a = evaluate_few_shot(sampler, data::TaskSpec{5, 1, 2}, 25,
                                   make_software_engine, 11);
  const auto b = evaluate_few_shot(sampler, data::TaskSpec{5, 1, 2}, 25,
                                   make_software_engine, 11);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(EvaluateFewShot, MoreShotsHelpOnNoisyFeatures) {
  const data::EpisodeSampler sampler{15, [](std::size_t cls, Rng& rng) {
                                       return std::vector<float>{
                                           static_cast<float>(cls) +
                                           static_cast<float>(rng.normal(0.0, 0.8))};
                                     }};
  const auto one_shot = evaluate_few_shot(sampler, data::TaskSpec{5, 1, 4}, 60,
                                          make_software_engine, 13,
                                          StoragePolicy::kPrototype);
  const auto five_shot = evaluate_few_shot(sampler, data::TaskSpec{5, 5, 4}, 60,
                                           make_software_engine, 13,
                                           StoragePolicy::kPrototype);
  EXPECT_GT(five_shot.accuracy, one_shot.accuracy);
}

TEST(EvaluateFewShot, Validation) {
  const data::EpisodeSampler sampler{5, [](std::size_t, Rng&) {
                                       return std::vector<float>{0.0f};
                                     }};
  EXPECT_THROW((void)evaluate_few_shot(sampler, data::TaskSpec{2, 1, 1}, 0,
                                       make_software_engine, 1),
               std::invalid_argument);
  EXPECT_THROW((void)evaluate_few_shot(sampler, data::TaskSpec{2, 1, 1}, 1,
                                       EngineFactory{}, 1),
               std::invalid_argument);
}

TEST(MannPipeline, EndToEndWithTrainedEmbedding) {
  // Train a small classifier on background character classes, then run the
  // full image -> embedding -> memory pipeline on held-out classes.
  constexpr std::size_t kBackgroundClasses = 12;
  constexpr std::size_t kHeldOutClasses = 5;
  const data::OmniglotGenerator background{kBackgroundClasses, data::OmniglotConfig{}, 3};
  const data::OmniglotGenerator held_out{kHeldOutClasses, data::OmniglotConfig{}, 999};

  Rng init_rng{5};
  ml::Sequential net = ml::make_mlp_classifier(background.feature_dim(),
                                               kBackgroundClasses, init_rng);
  const ml::SampleSource source = [&background](Rng& rng) {
    ml::TrainingSample sample;
    sample.label = rng.index(kBackgroundClasses);
    sample.input = background.render(sample.label, rng).flatten();
    return sample;
  };
  ml::TrainerConfig config;
  config.steps = 1200;
  Rng train_rng{7};
  (void)ml::train_classifier(net, source, config, train_rng);

  ml::TrainedEmbedding embedding{net, ml::kDefaultEmbeddingCut, 64};
  embedding.set_l2_normalize(true);

  MannPipeline pipeline{embedding, make_software_engine()};
  Rng episode_rng{9};
  std::vector<std::vector<float>> support;
  std::vector<int> labels;
  for (std::size_t cls = 0; cls < kHeldOutClasses; ++cls) {
    for (int shot = 0; shot < 3; ++shot) {
      support.push_back(held_out.render(cls, episode_rng).flatten());
      labels.push_back(static_cast<int>(cls));
    }
  }
  pipeline.store_support(support, labels);

  std::size_t correct = 0;
  constexpr std::size_t kQueries = 50;
  for (std::size_t q = 0; q < kQueries; ++q) {
    const auto cls = episode_rng.index(kHeldOutClasses);
    if (pipeline.classify(held_out.render(cls, episode_rng).flatten()) ==
        static_cast<int>(cls)) {
      ++correct;
    }
  }
  // Learned embeddings on unseen classes must beat chance (0.2) decisively.
  EXPECT_GT(static_cast<double>(correct) / kQueries, 0.6);
}

TEST(FeatureMemory, TopKLookupOutvotesOutlier) {
  FeatureMemory memory{make_software_engine(), StoragePolicy::kAllShots};
  // Nearest entry is a mislabeled outlier of class 9; the two next-nearest
  // agree on class 7, so the k=3 majority vote corrects the retrieval.
  const std::vector<std::vector<float>> support{{0.50f}, {0.60f}, {0.70f}, {5.0f}};
  const std::vector<int> labels{9, 7, 7, 9};
  memory.store(support, labels);
  EXPECT_EQ(memory.lookup(std::vector<float>{0.45f}, 1), 9);
  EXPECT_EQ(memory.lookup(std::vector<float>{0.45f}, 3), 7);
  const search::QueryResult retrieved = memory.retrieve(std::vector<float>{0.45f}, 3);
  ASSERT_EQ(retrieved.neighbors.size(), 3u);
  EXPECT_EQ(retrieved.neighbors[0].label, 9);
  EXPECT_EQ(retrieved.label, 7);
}

TEST(MannPipeline, TopKMajorityVoteCorrectsOutlierNeighbor) {
  // Satellite acceptance: k > 1 majority-vote classification through the
  // full pipeline (embedding -> memory -> vote).
  IdentityEmbedding embedding{1};
  MannPipeline pipeline{embedding, make_software_engine()};
  const std::vector<std::vector<float>> support{{0.50f}, {0.60f}, {0.70f}, {5.0f}, {5.1f}};
  const std::vector<int> labels{9, 7, 7, 9, 9};
  pipeline.store_support(support, labels);
  const std::vector<float> query{0.45f};
  EXPECT_EQ(pipeline.classify(query), 9);      // 1-NN hits the outlier.
  EXPECT_EQ(pipeline.classify(query, 3), 7);   // Majority vote corrects it.
  EXPECT_EQ(pipeline.retrieve(query, 3).neighbors.size(), 3u);
}

TEST(MannPipeline, TopKVoteWorksOnCamBackends) {
  // The same vote must hold when the memory is a CAM, ranking by matchline
  // conductance instead of metric distance.
  IdentityEmbedding embedding{4};
  auto engine = std::make_unique<search::McamNnEngine>();
  encoding::UniformQuantizer quantizer = encoding::UniformQuantizer::fit(
      std::vector<std::vector<float>>{{0.0f, 0.0f, 0.0f, 0.0f}, {8.0f, 8.0f, 8.0f, 8.0f}}, 3);
  engine->set_fixed_quantizer(quantizer);
  MannPipeline pipeline{embedding, std::move(engine)};
  const std::vector<std::vector<float>> support{
      {1.0f, 1.0f, 1.0f, 1.0f},   // class 9 outlier, nearest to the query
      {2.0f, 2.0f, 2.0f, 2.0f},   // class 7
      {2.5f, 2.5f, 2.5f, 2.5f},   // class 7
      {7.0f, 7.0f, 7.0f, 7.0f}};  // class 9, far away
  const std::vector<int> labels{9, 7, 7, 9};
  pipeline.store_support(support, labels);
  const std::vector<float> query{1.2f, 1.2f, 1.2f, 1.2f};
  EXPECT_EQ(pipeline.classify(query), 9);
  EXPECT_EQ(pipeline.classify(query, 3), 7);
}

TEST(MannPipeline, Validation) {
  Rng rng{11};
  ml::Sequential net = ml::make_mlp_classifier(16, 4, rng);
  ml::TrainedEmbedding embedding{net, ml::kDefaultEmbeddingCut, 64};
  MannPipeline pipeline{embedding, make_software_engine()};
  EXPECT_THROW(pipeline.store_support({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::mann
