#include "experiments/harness.hpp"
#include "experiments/lut_engine.hpp"
#include "experiments/stack.hpp"

#include "data/uci_synth.hpp"

#include <gtest/gtest.h>

namespace mcam::experiments {
namespace {

TEST(Harness, PaperMethodsOrder) {
  const auto methods = paper_methods();
  ASSERT_EQ(methods.size(), 5u);
  EXPECT_EQ(method_name(methods[0]), "3-bit MCAM");
  EXPECT_EQ(method_name(methods[1]), "2-bit MCAM");
  EXPECT_EQ(method_name(methods[2]), "TCAM+LSH");
  EXPECT_EQ(method_name(methods[3]), "Cosine");
  EXPECT_EQ(method_name(methods[4]), "Euclidean");
}

TEST(Harness, MakeEngineBuildsEveryMethod) {
  for (Method method : paper_methods()) {
    const auto engine = make_engine(method, 16, EngineOptions{});
    ASSERT_NE(engine, nullptr);
    EXPECT_FALSE(engine->name().empty());
  }
}

TEST(Harness, MakeEngineGoesThroughTheRegistry) {
  // The enum switch is gone: every Method maps to a registry key and the
  // string overload builds the same engine.
  for (Method method : paper_methods()) {
    const std::string key = method_key(method);
    EXPECT_TRUE(search::EngineFactory::instance().contains(key)) << key;
    EXPECT_EQ(make_engine(method, 16, EngineOptions{})->name(),
              make_engine(key, 16, EngineOptions{})->name());
  }
  EXPECT_THROW((void)make_engine("no-such-engine", 16, EngineOptions{}),
               std::invalid_argument);
}

TEST(Harness, LshDefaultsToWordLength) {
  const auto engine = make_engine(Method::kTcamLsh, 37, EngineOptions{});
  EXPECT_EQ(engine->name(), "TCAM+LSH (37b)");
  EngineOptions options;
  options.lsh_bits = 512;
  const auto wide = make_engine(Method::kTcamLsh, 37, options);
  EXPECT_EQ(wide->name(), "TCAM+LSH (512b)");
}

TEST(Harness, ClassificationReproducesPaperOrdering) {
  // Fig. 6 shape on Iris: MCAMs comparable to software, TCAM+LSH well
  // below (iso-capacity 4-bit signatures cannot encode 4 features).
  const data::Dataset iris = data::make_iris(3);
  const double mcam3 = run_classification(iris, Method::kMcam3, 5);
  const double euclidean = run_classification(iris, Method::kEuclidean, 5);
  const double lsh = run_classification(iris, Method::kTcamLsh, 5);
  EXPECT_GE(mcam3, euclidean - 0.05);
  EXPECT_GT(mcam3, lsh + 0.10);
  EXPECT_GE(mcam3, 0.90);
}

TEST(Harness, ClassificationDeterministicPerSeed) {
  const data::Dataset iris = data::make_iris(3);
  EXPECT_DOUBLE_EQ(run_classification(iris, Method::kMcam3, 11),
                   run_classification(iris, Method::kMcam3, 11));
}

TEST(Harness, ClassificationShardsWhenTrainExceedsBankCapacity) {
  // With a bank capacity set, a training split larger than one bank runs
  // on the sharded-* twin; under kIdealSum the accuracy is *identical* to
  // the monolithic engine (shard merge is bit-exact), so sharding is a
  // pure capacity/latency knob, never an accuracy trade.
  const data::Dataset iris = data::make_iris(3);  // 120 train rows.
  EngineOptions bounded;
  bounded.bank_rows = 32;  // 120 rows -> 4 banks.
  bounded.shard_workers = 2;
  for (Method method : {Method::kMcam3, Method::kEuclidean, Method::kTcamLsh}) {
    EXPECT_DOUBLE_EQ(run_classification(iris, method, 11, bounded),
                     run_classification(iris, method, 11, EngineOptions{}))
        << method_name(method);
  }
}

TEST(Harness, FewShotEpisodesExerciseBankAllocation) {
  // 5-way 5-shot = 25 support rows; bank_rows = 8 forces every episode
  // memory across 4 banks. The fixed (base-split) encoders keep per-bank
  // scores comparable, so accuracy matches the monolithic run exactly
  // under ideal sensing.
  FewShotOptions options;
  options.episodes = 15;
  const data::TaskSpec task{5, 5, 3};
  EngineOptions sharded = paper_engine_options();
  sharded.bank_rows = 8;
  sharded.shard_workers = 2;
  const auto banked = run_few_shot(task, Method::kMcam3, options, sharded);
  const auto monolithic =
      run_few_shot(task, Method::kMcam3, options, paper_engine_options());
  EXPECT_DOUBLE_EQ(banked.accuracy, monolithic.accuracy);
  EXPECT_EQ(banked.queries, monolithic.queries);
}

TEST(Harness, FewShotSoftwareBeatsChanceMassively) {
  FewShotOptions options;
  options.episodes = 40;
  const auto result =
      run_few_shot(data::TaskSpec{5, 1, 5}, Method::kCosine, options, EngineOptions{});
  EXPECT_GT(result.accuracy, 0.95);
  EXPECT_EQ(result.episodes, 40u);
}

TEST(Harness, FewShotPaperShapeHolds) {
  FewShotOptions options;
  options.episodes = 80;
  const EngineOptions engine_options = paper_engine_options();
  const data::TaskSpec task{5, 1, 5};
  const double cosine = run_few_shot(task, Method::kCosine, options, engine_options).accuracy;
  const double mcam3 = run_few_shot(task, Method::kMcam3, options, engine_options).accuracy;
  const double mcam2 = run_few_shot(task, Method::kMcam2, options, engine_options).accuracy;
  const double lsh = run_few_shot(task, Method::kTcamLsh, options, engine_options).accuracy;
  EXPECT_GT(mcam3, lsh + 0.05);   // MCAM beats the TCAM+LSH baseline.
  EXPECT_GT(mcam2, lsh);          // Even at 2 bits.
  EXPECT_GE(mcam3, mcam2 - 0.01); // Higher precision is at least as good.
  EXPECT_GT(mcam3, cosine - 0.04);// Within a few percent of software.
}

TEST(Harness, FewShotDeterministicPerSeed) {
  FewShotOptions options;
  options.episodes = 20;
  const auto a = run_few_shot(data::TaskSpec{5, 1, 2}, Method::kMcam3, options,
                              paper_engine_options());
  const auto b = run_few_shot(data::TaskSpec{5, 1, 2}, Method::kMcam3, options,
                              paper_engine_options());
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
}

TEST(Harness, VariationSigmaDegradesGracefullyThenBreaks) {
  // Fig. 8 shape: flat to ~80 mV, clearly degraded by 300 mV.
  FewShotOptions options;
  options.episodes = 60;
  const data::TaskSpec task{5, 1, 5};
  EngineOptions clean = paper_engine_options();
  EngineOptions mild = clean;
  mild.vth_sigma = 0.08;
  EngineOptions broken = clean;
  broken.vth_sigma = 0.30;
  const double acc_clean = run_few_shot(task, Method::kMcam3, options, clean).accuracy;
  const double acc_mild = run_few_shot(task, Method::kMcam3, options, mild).accuracy;
  const double acc_broken = run_few_shot(task, Method::kMcam3, options, broken).accuracy;
  EXPECT_GT(acc_mild, acc_clean - 0.03);   // No loss at the Fig. 5 sigma.
  EXPECT_LT(acc_broken, acc_clean - 0.05); // Clear loss past the cliff.
}

TEST(Stack, ProgrammerIsCachedPerBits) {
  Stack stack;
  const auto& a = stack.programmer(3);
  const auto& b = stack.programmer(3);
  EXPECT_EQ(&a, &b);
  const auto& two_bit = stack.programmer(2);
  EXPECT_EQ(two_bit.num_levels(), 4u);
}

TEST(LutEngine, AgreesWithArrayEngineWithoutVariation) {
  // The LUT-sum methodology (Sec. IV-A) and the array model must pick the
  // same neighbors when no hardware noise is injected.
  const data::Dataset iris = data::make_iris(3);
  Stack stack;
  const auto lut = cam::ConductanceLut::nominal(stack.level_map(3), stack.channel());

  const data::SplitDataset split = stratified_split(iris, 0.8, 5);
  McamLutEngine lut_engine{lut, 3};
  search::McamNnEngine array_engine{};
  lut_engine.add(split.train.features, split.train.labels);
  array_engine.add(split.train.features, split.train.labels);
  for (const auto& query : split.test.features) {
    EXPECT_EQ(lut_engine.query_one(query, 1).label, array_engine.query_one(query, 1).label);
  }
}

TEST(LutEngine, Validation) {
  const auto lut = cam::ConductanceLut::nominal(fefet::LevelMap{2});
  EXPECT_THROW((McamLutEngine{lut, 3}), std::invalid_argument);
  McamLutEngine engine{lut, 2};
  EXPECT_THROW((void)engine.query_one(std::vector<float>{1.0f}, 1), std::logic_error);
  EXPECT_THROW(engine.set_fixed_quantizer(
                   encoding::UniformQuantizer::fit(
                       std::vector<std::vector<float>>{{0.0f}, {1.0f}}, 3)),
               std::invalid_argument);
}

TEST(VirtualInstrument, CleanProfileMonotone) {
  Stack stack;
  const MeasuredProfile profile = measure_2bit_profile(stack, 0.0, 3);
  ASSERT_EQ(profile.distance.size(), 4u);
  for (std::size_t d = 1; d < 4; ++d) {
    EXPECT_GT(profile.conductance[d], profile.conductance[d - 1]);
  }
}

TEST(VirtualInstrument, NoiseChangesButTracksTrend) {
  // Fig. 9: experimental curve follows the simulated trend with extra
  // noise; conductance still increases with distance.
  Stack stack;
  const MeasuredProfile clean = measure_2bit_profile(stack, 0.0, 3);
  const MeasuredProfile noisy = measure_2bit_profile(stack, 0.35, 3);
  bool differs = false;
  for (std::size_t d = 0; d < 4; ++d) {
    if (clean.conductance[d] != noisy.conductance[d]) differs = true;
  }
  EXPECT_TRUE(differs);
  EXPECT_GT(noisy.conductance[3], noisy.conductance[0]);
}

TEST(VirtualInstrument, MeasuredLutStillClassifies) {
  // Fig. 9(c): application accuracy with the measured distance function
  // stays close to the simulated one.
  Stack stack;
  const auto measured = measured_2bit_lut(stack, 0.35, 7);
  FewShotOptions options;
  options.episodes = 60;

  const auto quantizer_source = [&options]() {
    // Build the same calibration the harness would use.
    return options;
  };
  (void)quantizer_source;

  // Run few-shot with the measured LUT via a custom factory.
  const ml::GaussianPrototypeEmbedding features{options.eval_classes + 32,
                                                options.feature_dim, options.intra_sigma,
                                                options.seed};
  Rng calib_rng{options.seed ^ 0xca11b7a7eULL};
  std::vector<std::vector<float>> calibration;
  for (std::size_t i = 0; i < options.calibration_samples; ++i) {
    calibration.push_back(features.sample(options.eval_classes + calib_rng.index(32),
                                          calib_rng));
  }
  const auto quantizer = encoding::UniformQuantizer::fit(calibration, 2, 6.0);
  const data::EpisodeSampler sampler{options.eval_classes,
                                     [&features](std::size_t cls, Rng& rng) {
                                       return features.sample(cls, rng);
                                     }};
  const mann::IndexFactory factory = [&measured, &quantizer]() {
    auto engine = std::make_unique<McamLutEngine>(measured, 2);
    engine->set_fixed_quantizer(quantizer);
    return engine;
  };
  const auto measured_result = mann::evaluate_few_shot(sampler, data::TaskSpec{5, 1, 5},
                                                       options.episodes, factory,
                                                       options.seed);
  const auto simulated_result = run_few_shot(data::TaskSpec{5, 1, 5}, Method::kMcam2,
                                             options, paper_engine_options());
  EXPECT_GT(measured_result.accuracy, 0.7);
  EXPECT_NEAR(measured_result.accuracy, simulated_result.accuracy, 0.1);
}

}  // namespace
}  // namespace mcam::experiments
