// The rerank kernel layer's identity contract (distance/kernels/):
//
//  - the scalar kernel is the bit-exact reference: the AVX2/NEON backends
//    must reproduce its per-lane accumulators bit for bit, on every
//    metric, odd dimensionality, and partial tail block;
//  - the int8 dot is exact integer arithmetic, identical across backends;
//  - every factory backend that ranks through the kernels (monolithic,
//    sharded, refine fine stages, with and without rerank=int8) returns
//    the same top-k whether the dispatcher picked SIMD or was pinned to
//    scalar (MCAM_FORCE_SCALAR / set_force_scalar).
#include "distance/kernels/kernels.hpp"
#include "distance/kernels/row_store.hpp"
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "serve/io.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

namespace mcam::search {
namespace {

namespace kernels = distance::kernels;
using distance::MetricKind;

constexpr MetricKind kAllKinds[] = {MetricKind::kEuclidean, MetricKind::kSquaredEuclidean,
                                    MetricKind::kCosine, MetricKind::kManhattan,
                                    MetricKind::kLinf};

/// Restores the force-scalar dispatch state on scope exit.
class ForceScalarGuard {
 public:
  ForceScalarGuard() : saved_(kernels::force_scalar()) {}
  ~ForceScalarGuard() { kernels::set_force_scalar(saved_); }

 private:
  bool saved_;
};

std::vector<float> random_row(Rng& rng, std::size_t dim) {
  std::vector<float> row(dim);
  // Mixed-sign, mixed-magnitude values so abs/fma corner cases are hit.
  for (auto& x : row) x = static_cast<float>(rng.normal(0.0, 2.0));
  return row;
}

/// Labeled Gaussian blob fixture for the engine-level identity checks.
struct Blobs {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Blobs make_blobs(std::size_t rows, std::size_t dim, std::size_t queries,
                 std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  for (std::size_t r = 0; r < rows; ++r) {
    const int cls = static_cast<int>(r % 3);
    std::vector<float> v(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.normal(1.5 * cls, 1.0));
    }
    blobs.rows.push_back(std::move(v));
    blobs.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < queries; ++q) {
    std::vector<float> v(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      v[d] = static_cast<float>(rng.normal(1.5 * (q % 3), 1.2));
    }
    blobs.queries.push_back(std::move(v));
  }
  return blobs;
}

TEST(Kernels, SimdAccumulatorsAreBitIdenticalToScalar) {
  const kernels::KernelOps& simd = kernels::active_ops();
  if (simd.block_accum == kernels::scalar_ops().block_accum) {
    GTEST_SKIP() << "no SIMD backend on this host";
  }
  Rng rng{101};
  // Odd dims exercise every unaligned tail; odd row counts leave partial
  // (zero-padded) tail blocks.
  for (const std::size_t dim : {std::size_t{1}, std::size_t{7}, std::size_t{48},
                                std::size_t{65}}) {
    kernels::RowStore store;
    const std::size_t rows = 2 * kernels::kBlockRows + 3;
    for (std::size_t r = 0; r < rows; ++r) (void)store.add(random_row(rng, dim));
    const std::vector<float> query = random_row(rng, dim);
    for (const MetricKind kind : kAllKinds) {
      for (std::size_t b = 0; b < store.num_blocks(); ++b) {
        alignas(32) float scalar_acc[kernels::kBlockRows];
        alignas(32) float simd_acc[kernels::kBlockRows];
        kernels::scalar_ops().block_accum(kind, store.block(b), query.data(), dim,
                                          scalar_acc);
        simd.block_accum(kind, store.block(b), query.data(), dim, simd_acc);
        for (std::size_t lane = 0; lane < kernels::kBlockRows; ++lane) {
          EXPECT_EQ(std::bit_cast<std::uint32_t>(scalar_acc[lane]),
                    std::bit_cast<std::uint32_t>(simd_acc[lane]))
              << "kind " << static_cast<int>(kind) << " dim " << dim << " block " << b
              << " lane " << lane;
        }
      }
    }
  }
}

TEST(Kernels, SimdInt8DotMatchesScalar) {
  const kernels::KernelOps& simd = kernels::active_ops();
  if (simd.dot_i8 == kernels::scalar_ops().dot_i8) {
    GTEST_SKIP() << "no SIMD backend on this host";
  }
  Rng rng{103};
  for (const std::size_t n : {kernels::kCodeAlign, 3 * kernels::kCodeAlign}) {
    std::vector<std::int8_t> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = static_cast<std::int8_t>(static_cast<int>(rng.normal(0.0, 60.0)) % 127);
      b[i] = static_cast<std::int8_t>(static_cast<int>(rng.normal(0.0, 60.0)) % 127);
    }
    EXPECT_EQ(kernels::scalar_ops().dot_i8(a.data(), b.data(), n),
              simd.dot_i8(a.data(), b.data(), n));
  }
}

TEST(Kernels, ForceScalarPinsDispatch) {
  ForceScalarGuard guard;
  kernels::set_force_scalar(true);
  EXPECT_TRUE(kernels::force_scalar());
  EXPECT_STREQ(kernels::active_ops().name, "scalar");
  kernels::set_force_scalar(false);
  EXPECT_FALSE(kernels::force_scalar());
}

TEST(Kernels, FinalizeMatchesMetricSemantics) {
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kEuclidean, 9.0f, 0.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kSquaredEuclidean, 9.0f, 0.0, 0.0), 9.0);
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kManhattan, 2.5f, 0.0, 0.0), 2.5);
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kLinf, 2.5f, 0.0, 0.0), 2.5);
  // Cosine: 1 - acc / (|q||r|), 1.0 when either norm is zero.
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kCosine, 6.0f, 2.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(kernels::finalize(MetricKind::kCosine, 6.0f, 0.0, 3.0), 1.0);
}

TEST(RowStore, PreservesRowBytesExactly) {
  Rng rng{105};
  kernels::RowStore store;
  std::vector<std::vector<float>> rows;
  for (std::size_t r = 0; r < kernels::kBlockRows + 5; ++r) {
    rows.push_back(random_row(rng, 7));
    EXPECT_EQ(store.add(rows.back()), r);
  }
  EXPECT_EQ(store.rows(), rows.size());
  EXPECT_EQ(store.dim(), 7u);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const std::vector<float> copy = store.row_copy(r);
    ASSERT_EQ(copy.size(), rows[r].size());
    for (std::size_t d = 0; d < copy.size(); ++d) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(copy[d]),
                std::bit_cast<std::uint32_t>(rows[r][d]))
          << "row " << r << " dim " << d;
      EXPECT_EQ(store.value(r, d), rows[r][d]);
    }
  }
  EXPECT_THROW((void)store.add(std::vector<float>(3)), std::invalid_argument);
  EXPECT_THROW((void)store.row_copy(rows.size()), std::out_of_range);
}

TEST(RowStore, Int8CodesFollowTheBlockScale) {
  kernels::RowStore store{true};
  // Second row widens the block's max-abs, forcing a requantize of row 0.
  (void)store.add(std::vector<float>{1.0f, -0.5f});
  (void)store.add(std::vector<float>{10.0f, 2.0f});
  ASSERT_EQ(store.padded_dim(), kernels::kCodeAlign);
  const float scale = store.block_scale(0);
  EXPECT_FLOAT_EQ(scale, 10.0f / 127.0f);
  for (std::size_t r = 0; r < store.rows(); ++r) {
    const std::int8_t* codes = store.row_codes(r);
    for (std::size_t d = 0; d < store.dim(); ++d) {
      const long expected = std::lrintf(store.value(r, d) / scale);
      EXPECT_EQ(static_cast<long>(codes[d]), expected) << "row " << r << " dim " << d;
    }
    // Zero padding beyond dim contributes nothing to any dot product.
    for (std::size_t d = store.dim(); d < store.padded_dim(); ++d) {
      EXPECT_EQ(codes[d], 0) << "row " << r << " pad " << d;
    }
  }
}

TEST(MetricNames, AliasesResolveAndUnknownsListKnownNames) {
  EXPECT_EQ(distance::metric_kind_by_name("l2"), MetricKind::kEuclidean);
  EXPECT_EQ(distance::metric_kind_by_name("euclidean"), MetricKind::kEuclidean);
  EXPECT_EQ(distance::metric_kind_by_name("l1"), MetricKind::kManhattan);
  EXPECT_EQ(distance::metric_kind_by_name("sq-euclidean"), MetricKind::kSquaredEuclidean);
  EXPECT_EQ(distance::metric_kind_by_name("nope"), std::nullopt);
  // Aliases serve the functor surface too.
  const std::vector<float> a{0.0f, 0.0f}, b{3.0f, 4.0f};
  EXPECT_DOUBLE_EQ(distance::metric_by_name("l2")(a, b), 5.0);
  EXPECT_DOUBLE_EQ(distance::metric_by_name("l1")(a, b), 7.0);
  try {
    (void)distance::metric_by_name("chebyshev");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("'chebyshev'"), std::string::npos) << what;
    EXPECT_NE(what.find("known: cosine, euclidean, l1, l2, linf, manhattan, sq-euclidean"),
              std::string::npos)
        << what;
  }
}

TEST(ExactNnIndexKernels, KNearestAmongIgnoresDuplicateAndStaleIds) {
  // Regression (satellite contract): repeated ids must not produce
  // repeated neighbors, and tombstoned / never-added ids must not count
  // as candidates - on the kernel path, the int8 path, and the functor
  // path alike.
  const Blobs blobs = make_blobs(20, 6, 1, 107);
  const auto check = [&](ExactNnIndex& index) {
    index.add_all(blobs.rows, blobs.labels);
    ASSERT_TRUE(index.erase(3));
    const std::vector<std::size_t> ids{5, 3, 5, 5, 2, 999, 3, 7, 2, 7};
    std::size_t live = 0;
    const std::vector<Neighbor> top =
        index.k_nearest_among(blobs.queries[0], ids, 10, &live);
    EXPECT_EQ(live, 3u);  // Unique live survivors: {2, 5, 7}.
    ASSERT_EQ(top.size(), live);
    std::vector<std::size_t> seen;
    for (const Neighbor& n : top) seen.push_back(n.index);
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, (std::vector<std::size_t>{2, 5, 7}));
    // Ascending distances with the deterministic tie-break.
    for (std::size_t i = 1; i < top.size(); ++i) {
      EXPECT_GE(top[i].distance, top[i - 1].distance);
    }
  };
  ExactNnIndex fp32{MetricKind::kEuclidean};
  check(fp32);
  ExactNnIndex int8{MetricKind::kEuclidean, ExactNnIndex::RerankMode::kInt8};
  check(int8);
  ExactNnIndex functor{distance::metric_by_name("euclidean")};
  check(functor);
}

TEST(ExactNnIndexKernels, KernelPathRejectsQueryDimensionMismatch) {
  ExactNnIndex index{MetricKind::kEuclidean};
  index.add({1.0f, 2.0f}, 0);
  EXPECT_THROW((void)index.k_nearest(std::vector<float>{1.0f}, 1), std::invalid_argument);
}

TEST(ExactNnIndexKernels, Int8RescoredScoresAreExactFp32) {
  // The int8 path nominates by quantized ordering but must return *exact*
  // FP32 distances for whatever it returns.
  const Blobs blobs = make_blobs(64, 16, 4, 109);
  ExactNnIndex fp32{MetricKind::kEuclidean};
  ExactNnIndex int8{MetricKind::kEuclidean, ExactNnIndex::RerankMode::kInt8};
  fp32.add_all(blobs.rows, blobs.labels);
  int8.add_all(blobs.rows, blobs.labels);
  for (const auto& q : blobs.queries) {
    const std::vector<Neighbor> exact = fp32.k_nearest(q, fp32.size());
    const std::vector<Neighbor> approx = int8.k_nearest(q, 5);
    for (const Neighbor& n : approx) {
      bool found = false;
      for (const Neighbor& e : exact) {
        if (e.index == n.index) {
          EXPECT_DOUBLE_EQ(e.distance, n.distance) << "id " << n.index;
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found);
    }
  }
}

TEST(ExactNnIndexKernels, KernelNameReflectsThePath) {
  ForceScalarGuard guard;
  ExactNnIndex functor{distance::metric_by_name("euclidean")};
  EXPECT_STREQ(functor.kernel_name(), "functor");
  ExactNnIndex fp32{MetricKind::kEuclidean};
  ExactNnIndex int8{MetricKind::kEuclidean, ExactNnIndex::RerankMode::kInt8};
  ExactNnIndex linf_int8{MetricKind::kLinf, ExactNnIndex::RerankMode::kInt8};
  kernels::set_force_scalar(true);
  EXPECT_STREQ(fp32.kernel_name(), "scalar");
  EXPECT_STREQ(int8.kernel_name(), "scalar+int8");
  // Unsupported metrics silently stay FP32 under rerank=int8.
  EXPECT_STREQ(linf_int8.kernel_name(), "scalar");
  kernels::set_force_scalar(false);
  EXPECT_STREQ(fp32.kernel_name(), kernels::active_ops().name);
}

/// Queries `spec` twice - SIMD dispatch vs pinned scalar - and demands the
/// answers be bit-identical (indices, labels, and distances). int8 specs
/// qualify too: integer dots are exact, and the final scores come from the
/// bit-exact FP32 kernels.
void expect_backend_scalar_identity(const std::string& spec, const Blobs& blobs) {
  ForceScalarGuard guard;
  EngineConfig config;
  config.num_features = blobs.rows.front().size();
  const auto run = [&] {
    std::unique_ptr<NnIndex> engine = make_index(spec, config);
    engine->add(blobs.rows, blobs.labels);
    std::vector<QueryResult> results;
    for (const auto& q : blobs.queries) results.push_back(engine->query_one(q, 10));
    // And through the rerank primitive, over an id subset with noise.
    std::vector<std::size_t> ids;
    for (std::size_t i = 0; i < blobs.rows.size(); i += 2) ids.push_back(i);
    ids.push_back(0);  // Duplicate.
    for (const auto& q : blobs.queries) results.push_back(engine->query_subset(q, ids, 5));
    return results;
  };
  kernels::set_force_scalar(false);
  const std::vector<QueryResult> dispatched = run();
  kernels::set_force_scalar(true);
  const std::vector<QueryResult> scalar = run();
  ASSERT_EQ(dispatched.size(), scalar.size());
  for (std::size_t i = 0; i < dispatched.size(); ++i) {
    EXPECT_EQ(dispatched[i].label, scalar[i].label) << spec << " query " << i;
    ASSERT_EQ(dispatched[i].neighbors.size(), scalar[i].neighbors.size()) << spec;
    for (std::size_t n = 0; n < dispatched[i].neighbors.size(); ++n) {
      EXPECT_EQ(dispatched[i].neighbors[n].index, scalar[i].neighbors[n].index)
          << spec << " query " << i << " rank " << n;
      EXPECT_EQ(std::bit_cast<std::uint64_t>(dispatched[i].neighbors[n].distance),
                std::bit_cast<std::uint64_t>(scalar[i].neighbors[n].distance))
          << spec << " query " << i << " rank " << n;
    }
  }
}

TEST(BackendIdentity, EveryKernelBackendMatchesScalarReference) {
  const Blobs blobs = make_blobs(48, 17, 4, 111);  // Odd dim: unaligned tails.
  for (const std::string spec : {
           "euclidean", "cosine", "manhattan", "linf",
           "euclidean:rerank=int8", "cosine:rerank=int8",
           "sharded-euclidean:bank_rows=16",
           "sharded-cosine:bank_rows=16,rerank=int8",
           "refine:exhaustive=1,fine=euclidean",
           "refine:exhaustive=1,fine=euclidean:rerank=int8",
       }) {
    SCOPED_TRACE(spec);
    expect_backend_scalar_identity(spec, blobs);
  }
}

TEST(SoftwareEngine, RerankSpecKeyAndTelemetry) {
  const Blobs blobs = make_blobs(24, 8, 1, 113);
  SoftwareNnEngine int8{"euclidean", "int8"};
  EXPECT_EQ(int8.name(), "euclidean (int8 rerank)");
  // Unsupported metric + int8 falls back to FP32, and says so.
  SoftwareNnEngine linf{"linf", "int8"};
  EXPECT_EQ(linf.name(), "linf (FP32)");
  EXPECT_THROW((SoftwareNnEngine{"euclidean", "fp16"}), std::invalid_argument);
  EXPECT_THROW((void)make_index("euclidean:rerank=fp16"), std::invalid_argument);

  std::unique_ptr<NnIndex> engine = make_index("euclidean:rerank=int8");
  engine->add(blobs.rows, blobs.labels);
  const QueryResult result = engine->query_one(blobs.queries[0], 3);
  EXPECT_STREQ(result.telemetry.kernel, int8.kernel_name());
  EXPECT_NE(std::string{result.telemetry.kernel}.find("int8"), std::string::npos);

  std::unique_ptr<NnIndex> sharded = make_index("sharded-euclidean:bank_rows=8,rerank=int8");
  sharded->add(blobs.rows, blobs.labels);
  EXPECT_STREQ(sharded->query_one(blobs.queries[0], 3).telemetry.kernel,
               result.telemetry.kernel);
}

TEST(SoftwareEngine, SnapshotPayloadIsIdenticalAcrossRerankModes) {
  // The RowStore preserves exact row bytes and the engine payload format
  // is unchanged, so fp32 and int8 engines over the same adds serialize
  // byte-identically (the rerank mode lives in the engine *config*, not
  // the payload) - and restoring an int8 engine reproduces its answers.
  const Blobs blobs = make_blobs(20, 6, 2, 115);
  SoftwareNnEngine fp32{"euclidean"};
  SoftwareNnEngine int8{"euclidean", "int8"};
  fp32.add(blobs.rows, blobs.labels);
  int8.add(blobs.rows, blobs.labels);
  ASSERT_TRUE(fp32.erase(4));
  ASSERT_TRUE(int8.erase(4));
  serve::io::Writer fp32_bytes, int8_bytes;
  fp32.save_state(fp32_bytes);
  int8.save_state(int8_bytes);
  EXPECT_EQ(fp32_bytes.buffer(), int8_bytes.buffer());

  SoftwareNnEngine restored{"euclidean", "int8"};
  serve::io::Reader reader{int8_bytes.buffer()};
  restored.load_state(reader);
  EXPECT_EQ(restored.size(), int8.size());
  for (const auto& q : blobs.queries) {
    const QueryResult a = int8.query_one(q, 5);
    const QueryResult b = restored.query_one(q, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (std::size_t n = 0; n < a.neighbors.size(); ++n) {
      EXPECT_EQ(a.neighbors[n].index, b.neighbors[n].index);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.neighbors[n].distance),
                std::bit_cast<std::uint64_t>(b.neighbors[n].distance));
    }
  }
}

}  // namespace
}  // namespace mcam::search
