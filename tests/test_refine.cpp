// Two-stage pipeline invariants (search/refine.hpp): with the exhaustive
// fallback on - or with candidate_factor large enough that the coarse
// stage nominates every live row - TwoStageNnIndex is bit-identical to
// its fine backend alone, for every factory backend; query_subset
// overrides match the default filtered-full-ranking implementation;
// erase routes into both stages; the refine:* spec syntax (fine= consumes
// the rest of the spec) parses and round-trips through snapshots and the
// QueryService; telemetry reports coarse/fine candidate counts and the
// combined energy. Plus the one-k-convention property (k = 0 == k = 1)
// across every registered backend.
#include "search/refine.hpp"

#include "cam/lut.hpp"
#include "energy/model.hpp"
#include "experiments/lut_engine.hpp"
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "search/sharded.hpp"
#include "serve/service.hpp"
#include "serve/snapshot.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <vector>

namespace mcam::search {
namespace {

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.5 + (i % 3) * 0.3, 0.8));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 4);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 4)));
  }
  return data;
}

void expect_identical(const QueryResult& two_stage, const QueryResult& fine_alone,
                      const std::string& context) {
  EXPECT_EQ(two_stage.label, fine_alone.label) << context;
  ASSERT_EQ(two_stage.neighbors.size(), fine_alone.neighbors.size()) << context;
  for (std::size_t i = 0; i < fine_alone.neighbors.size(); ++i) {
    EXPECT_EQ(two_stage.neighbors[i].index, fine_alone.neighbors[i].index)
        << context << " rank " << i;
    EXPECT_EQ(two_stage.neighbors[i].label, fine_alone.neighbors[i].label)
        << context << " rank " << i;
    EXPECT_EQ(two_stage.neighbors[i].distance, fine_alone.neighbors[i].distance)
        << context << " rank " << i;  // Exact: same conductances / metrics.
  }
}

/// Every backend key the registry offers monolithically.
const std::vector<std::string>& backend_keys() {
  static const std::vector<std::string> keys{
      "mcam3", "mcam2", "mcam", "tcam-lsh", "cosine", "euclidean", "manhattan", "linf"};
  return keys;
}

TEST(TwoStageIdentity, ExhaustiveFallbackIsBitIdenticalPerFactoryBackend) {
  // Acceptance: with the fallback on, the pipeline answers with the fine
  // backend alone - result AND telemetry verbatim - for every backend.
  const Data data = make_data(80, 8, 5, 211);
  for (const std::string& key : backend_keys()) {
    EngineConfig config;
    config.num_features = 8;
    auto fine_alone = make_index(key, config);
    EngineConfig refine_config = config;
    refine_config.fine_spec = key;
    refine_config.coarse_bits = 16;
    refine_config.candidate_factor = 2;
    refine_config.refine_exhaustive = true;
    auto two_stage = make_index("refine", refine_config);

    fine_alone->add(data.rows, data.labels);
    two_stage->add(data.rows, data.labels);
    EXPECT_EQ(two_stage->size(), fine_alone->size()) << key;

    for (const auto& q : data.queries) {
      for (std::size_t k : {std::size_t{1}, std::size_t{7}, std::size_t{80}}) {
        const QueryResult ours = two_stage->query_one(q, k);
        const QueryResult theirs = fine_alone->query_one(q, k);
        expect_identical(ours, theirs, key + " fallback k=" + std::to_string(k));
        EXPECT_EQ(ours.telemetry.candidates, theirs.telemetry.candidates) << key;
        EXPECT_EQ(ours.telemetry.energy_j, theirs.telemetry.energy_j) << key;
        EXPECT_EQ(ours.telemetry.coarse_candidates, 0u) << key;
      }
    }
  }
}

TEST(TwoStageIdentity, FullCandidateSetIsBitIdenticalPerFactoryBackend) {
  // Acceptance: with candidate_factor high enough the coarse stage
  // nominates every live row, and the rerank (query_subset) must
  // reproduce the fine backend's native ranking exactly - including for a
  // sharded fine stage and after erases.
  const Data data = make_data(60, 8, 4, 223);
  for (const std::string& key : backend_keys()) {
    for (const bool sharded_fine : {false, true}) {
      const std::string fine_key = sharded_fine ? "sharded-" + key : key;
      EngineConfig config;
      config.num_features = 8;
      config.bank_rows = sharded_fine ? 16 : 0;
      config.shard_workers = 1;
      auto fine_alone = make_index(fine_key, config);
      EngineConfig refine_config = config;
      refine_config.fine_spec = fine_key;
      refine_config.coarse_bits = 24;
      refine_config.candidate_factor = 1000;  // Nominates every live row.
      auto two_stage = make_index("refine", refine_config);

      fine_alone->add(data.rows, data.labels);
      two_stage->add(data.rows, data.labels);
      for (std::size_t id : {std::size_t{3}, std::size_t{17}, std::size_t{42}}) {
        EXPECT_EQ(fine_alone->erase(id), two_stage->erase(id)) << fine_key;
      }

      for (const auto& q : data.queries) {
        for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{57}}) {
          expect_identical(two_stage->query_one(q, k), fine_alone->query_one(q, k),
                           fine_key + " full-candidates k=" + std::to_string(k));
        }
      }
    }
  }
}

TEST(TwoStageQuery, SubsetOverrideMatchesDefaultImplementation) {
  // SoftwareNnEngine overrides query_subset with a candidates-only scan;
  // it must be bit-identical (result and telemetry) to the generic
  // filtered-full-ranking default, which McamNnEngine exercises here via
  // an equivalent-ranking metric check on the same candidate set.
  const Data data = make_data(50, 6, 4, 229);
  SoftwareNnEngine engine{"euclidean"};
  engine.add(data.rows, data.labels);
  ASSERT_TRUE(engine.erase(7));
  const std::vector<std::size_t> ids{1, 7, 3, 3, 11, 29, 44, 49, 999};  // dup/dead/bogus
  for (const auto& q : data.queries) {
    const QueryResult fast = engine.query_subset(q, ids, 4);
    const QueryResult slow = engine.NnIndex::query_subset(q, ids, 4);
    expect_identical(fast, slow, "software subset override");
    EXPECT_EQ(fast.telemetry.candidates, slow.telemetry.candidates);
    EXPECT_EQ(fast.telemetry.candidates, 6u);  // 7 erased, 3 duped, 999 unknown.
    EXPECT_EQ(fast.telemetry.sense_events, slow.telemetry.sense_events);
  }
  // Degenerate candidate sets fail loudly instead of returning nothing.
  EXPECT_THROW((void)engine.query_subset(data.queries[0], {}, 3), std::invalid_argument);
  const std::vector<std::size_t> dead{7};
  EXPECT_THROW((void)engine.query_subset(data.queries[0], dead, 3), std::invalid_argument);
}

TEST(TwoStageQuery, SubsetEnergyChargesOnlyTheCandidateFraction) {
  const Data data = make_data(40, 6, 1, 233);
  EngineConfig config;
  config.num_features = 6;
  auto mcam = make_index("mcam3", config);
  mcam->add(data.rows, data.labels);
  const QueryResult full = mcam->query_one(data.queries[0], 4);
  const std::vector<std::size_t> ids{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const QueryResult subset = mcam->query_subset(data.queries[0], ids, 4);
  EXPECT_EQ(subset.telemetry.candidates, 10u);
  EXPECT_GT(subset.telemetry.energy_j, 0.0);
  // The MCAM search energy model is linear in rows: 10/40 of the full pay.
  EXPECT_NEAR(subset.telemetry.energy_j, full.telemetry.energy_j * 10.0 / 40.0,
              1e-12 * full.telemetry.energy_j);
}

TEST(TwoStageMutation, EraseRoutesIntoBothStagesAndTombstonesNominations) {
  // An erased row must be gone from the coarse nominations too: with
  // candidate_factor = 1 and k = 1, serving a stale coarse hit would
  // surface immediately as a dead id in the answer.
  const Data data = make_data(30, 6, 6, 239);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "mcam3";
  config.coarse_bits = 32;
  config.candidate_factor = 1;
  auto index = make_index("refine", config);
  index->add(data.rows, data.labels);

  const auto& two_stage = dynamic_cast<const TwoStageNnIndex&>(*index);
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), 30u);
  EXPECT_EQ(two_stage.fine().size(), 30u);

  std::set<std::size_t> erased;
  Rng rng{17};
  for (int e = 0; e < 12; ++e) {
    const std::size_t id = rng.index(30);
    EXPECT_EQ(index->erase(id), erased.insert(id).second);
  }
  EXPECT_EQ(index->size(), 30 - erased.size());
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), index->size());
  for (const auto& q : data.queries) {
    const QueryResult result = index->query_one(q, 3);
    for (const Neighbor& n : result.neighbors) {
      EXPECT_FALSE(erased.count(n.index)) << "tombstoned id " << n.index << " served";
    }
  }
  EXPECT_THROW((void)index->erase(30), std::out_of_range);
  // clear() empties both stages (the coarse TCAM and the fitted signature
  // model are dropped entirely); the next add recalibrates both.
  index->clear();
  EXPECT_EQ(index->size(), 0u);
  EXPECT_FALSE(two_stage.signature_model().fitted());
  EXPECT_THROW((void)two_stage.coarse_tcam(), std::logic_error);
  index->add(data.rows, data.labels);
  EXPECT_EQ(index->size(), 30u);
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), 30u);
}

TEST(TwoStageTelemetry, ReportsPerStageCandidatesAndCombinedEnergy) {
  // Geometry where the prefilter pays off in the energy model: a narrow
  // (8-bit) binary TCAM sweep plus 20 reranked multi-bit matchlines vs
  // charging all 120 of the 32-cell MCAM's matchlines.
  const Data data = make_data(120, 32, 3, 241);
  EngineConfig config;
  config.num_features = 32;
  config.fine_spec = "mcam3";
  config.coarse_bits = 8;
  config.candidate_factor = 4;
  auto index = make_index("refine", config);
  index->add(data.rows, data.labels);

  EngineConfig fine_config;
  fine_config.num_features = 32;
  auto fine_alone = make_index("mcam3", fine_config);
  fine_alone->add(data.rows, data.labels);

  const double coarse_energy =
      energy::ArrayEnergyModel{energy::ArrayParams{}}.tcam_search_energy(120, 8);
  for (const auto& q : data.queries) {
    const QueryTelemetry t = index->query_one(q, 5).telemetry;
    EXPECT_EQ(t.coarse_candidates, 120u);  // The TCAM still scans every row...
    EXPECT_EQ(t.fine_candidates, 20u);     // ...but the MCAM reranks only 4*5.
    EXPECT_EQ(t.candidates, 140u);
    EXPECT_EQ(t.banks_searched, 2u);
    EXPECT_EQ(t.probes_used, 1u);       // Single-probe default.
    EXPECT_GE(t.coarse_margin, 0.0);    // Gap at the nomination cut.

    // Combined energy = full TCAM sweep + candidate-gated MCAM search.
    const QueryTelemetry exhaustive = fine_alone->query_one(q, 5).telemetry;
    const double expected = coarse_energy + exhaustive.energy_j * 20.0 / 120.0;
    EXPECT_NEAR(t.energy_j, expected, 1e-9 * expected);
    // And it is the measurable win of the whole exercise.
    EXPECT_LT(t.energy_j, 0.7 * exhaustive.energy_j);
  }
}

TEST(TwoStageSpec, FineKeyConsumesTheRestOfTheSpec) {
  const EngineSpec spec = parse_engine_spec(
      "refine:coarse_bits=64,candidate_factor=8,sig=trained,probes=4,"
      "fine=sharded-mcam:bits=2,bank_rows=16");
  EXPECT_EQ(spec.name, "refine");
  EXPECT_EQ(spec.config.coarse_bits, 64u);
  EXPECT_EQ(spec.config.candidate_factor, 8u);
  EXPECT_EQ(spec.config.sig_model, "trained");
  EXPECT_EQ(spec.config.probes, 4u);
  // Everything after fine= belongs to the nested spec, commas included.
  EXPECT_EQ(spec.config.fine_spec, "sharded-mcam:bits=2,bank_rows=16");

  const EngineSpec exhaustive = parse_engine_spec("refine:exhaustive=1,fine=euclidean");
  EXPECT_TRUE(exhaustive.config.refine_exhaustive);
  EXPECT_EQ(exhaustive.config.fine_spec, "euclidean");

  EXPECT_THROW((void)parse_engine_spec("refine:fine="), std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec("refine:candidate_factor=banana,fine=mcam3"),
               std::invalid_argument);
  // A refine engine without a fine stage is a configuration error.
  EngineConfig config;
  config.num_features = 4;
  EXPECT_THROW((void)make_index("refine", config), std::invalid_argument);
  EXPECT_THROW((void)make_index("refine:coarse_bits=16", config), std::invalid_argument);
}

TEST(TwoStageSpec, SigAndProbesKeyErrorPaths) {
  EngineConfig config;
  config.num_features = 4;

  // Nested fine= specs keep their own sig=/probes= keys: the outer spec
  // stops parsing at fine=, so the nested pipeline gets its own model.
  const EngineSpec nested = parse_engine_spec(
      "refine:sig=itq,probes=2,fine=refine:sig=trained,probes=8,fine=euclidean");
  EXPECT_EQ(nested.config.sig_model, "itq");
  EXPECT_EQ(nested.config.probes, 2u);
  EXPECT_EQ(nested.config.fine_spec, "refine:sig=trained,probes=8,fine=euclidean");
  const EngineSpec inner = parse_engine_spec(nested.config.fine_spec);
  EXPECT_EQ(inner.config.sig_model, "trained");
  EXPECT_EQ(inner.config.probes, 8u);
  EXPECT_EQ(inner.config.fine_spec, "euclidean");
  // And the whole nested pipeline builds end to end.
  const Data data = make_data(30, 4, 2, 271);
  auto nested_index = make_index(
      "refine:coarse_bits=16,sig=itq,probes=2,"
      "fine=refine:coarse_bits=16,sig=trained,probes=8,candidate_factor=1000,"
      "fine=euclidean",
      config);
  nested_index->add(data.rows, data.labels);
  EXPECT_EQ(nested_index->query_one(data.queries[0], 3).neighbors.size(), 3u);

  // Unknown sig-model names throw with the known-model list.
  try {
    (void)make_index("refine:coarse_bits=16,sig=banana,fine=euclidean", config);
    FAIL() << "unknown sig model accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("banana"), std::string::npos) << what;
    EXPECT_NE(what.find("itq"), std::string::npos) << what;
    EXPECT_NE(what.find("random"), std::string::npos) << what;
    EXPECT_NE(what.find("trained"), std::string::npos) << what;
  }

  // Unknown keys still list the spec vocabulary, now including sig/probes.
  try {
    (void)parse_engine_spec("refine:sigg=itq,fine=euclidean");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("sig"), std::string::npos) << what;
    EXPECT_NE(what.find("probes"), std::string::npos) << what;
  }

  // Duplicate-key rejection covers the new keys.
  EXPECT_THROW((void)parse_engine_spec("refine:sig=itq,sig=trained,fine=euclidean"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec("refine:probes=2,probes=4,fine=euclidean"),
               std::invalid_argument);
  // Malformed and empty values for the new keys fail loudly.
  EXPECT_THROW((void)parse_engine_spec("refine:probes=two,fine=euclidean"),
               std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec("refine:sig=,fine=euclidean"),
               std::invalid_argument);
}

TEST(TwoStageMultiProbe, RecoversRecallAndNeverServesTombstones) {
  // Multi-probe sweeps flip the query's lowest-margin signature bits; the
  // candidate set can only grow toward the true neighbors, and erased rows
  // must be invisible to every probe.
  const Data data = make_data(200, 8, 10, 281);
  EngineConfig config;
  config.num_features = 8;
  const auto truth = make_index("euclidean", config);
  truth->add(data.rows, data.labels);

  double single_recall = 0.0;
  double multi_recall = 0.0;
  for (const std::size_t probes : {std::size_t{1}, std::size_t{8}}) {
    auto index = make_index("refine:coarse_bits=12,candidate_factor=2,probes=" +
                                std::to_string(probes) + ",fine=euclidean",
                            config);
    index->add(data.rows, data.labels);
    double recall = 0.0;
    for (const auto& q : data.queries) {
      const QueryResult result = index->query_one(q, 5);
      EXPECT_EQ(result.telemetry.probes_used, probes);
      EXPECT_EQ(result.telemetry.coarse_candidates, 200u * probes);
      std::set<std::size_t> expected;
      for (const Neighbor& n : truth->query_one(q, 5).neighbors) expected.insert(n.index);
      for (const Neighbor& n : result.neighbors) recall += expected.count(n.index);
    }
    (probes == 1 ? single_recall : multi_recall) = recall;
  }
  // 8 probes over 12-bit signatures at factor 2 must not lose recall (on
  // this seed they strictly gain).
  EXPECT_GE(multi_recall, single_recall);

  // Tombstoned rows never surface through any probe.
  auto index = make_index("refine:coarse_bits=12,candidate_factor=1,probes=8,fine=euclidean",
                          config);
  index->add(data.rows, data.labels);
  std::set<std::size_t> erased;
  for (std::size_t id = 0; id < 200; id += 3) {
    ASSERT_TRUE(index->erase(id));
    erased.insert(id);
  }
  for (const auto& q : data.queries) {
    for (const Neighbor& n : index->query_one(q, 4).neighbors) {
      EXPECT_FALSE(erased.count(n.index)) << "tombstoned id " << n.index;
    }
  }
}

TEST(TwoStageConstruction, RejectsBoundedCoarseConfig) {
  // A capacity-bounded coarse TCAM could throw mid-batch after the fine
  // stage accepted the rows, desynchronizing the stages forever - so the
  // constructor refuses it up front.
  sig::SignatureModelConfig model_config;
  model_config.num_bits = 8;
  cam::TcamArrayConfig bounded;
  bounded.max_rows = 4;
  EXPECT_THROW((void)make_two_stage(
                   sig::SignatureModelFactory::instance().create("random", model_config),
                   bounded, std::make_unique<SoftwareNnEngine>("euclidean")),
               std::invalid_argument);
  // Unbounded builds fine.
  auto index = make_two_stage(
      sig::SignatureModelFactory::instance().create("random", model_config),
      cam::TcamArrayConfig{}, std::make_unique<SoftwareNnEngine>("euclidean"));
  const Data data = make_data(20, 4, 1, 307);
  index->add(data.rows, data.labels);
  EXPECT_EQ(index->query_one(data.queries[0], 2).neighbors.size(), 2u);
}

TEST(TwoStageMutation, RejectedFirstBatchDoesNotPinTheCalibration) {
  // A first add rejected by the fine stage (capacity) must not leave the
  // coarse encoders fitted to rows that were never stored - fit-once
  // would pin that calibration forever.
  const Data data = make_data(12, 6, 2, 313);
  sig::SignatureModelConfig model_config;
  model_config.num_bits = 16;
  cam::TcamArrayConfig bounded_fine;
  bounded_fine.max_rows = 4;
  auto index = make_two_stage(
      sig::SignatureModelFactory::instance().create("trained", model_config),
      cam::TcamArrayConfig{}, std::make_unique<TcamLshEngine>(16, 7, bounded_fine));
  const auto& two_stage = dynamic_cast<const TwoStageNnIndex&>(*index);
  EXPECT_THROW(index->add(data.rows, data.labels), std::length_error);
  EXPECT_EQ(index->size(), 0u);
  EXPECT_FALSE(two_stage.signature_model().fitted());
  EXPECT_THROW((void)two_stage.coarse_tcam(), std::logic_error);
  // A batch that fits calibrates on ITS rows and works normally.
  index->add(std::span{data.rows}.subspan(0, 4), std::span{data.labels}.subspan(0, 4));
  EXPECT_EQ(index->size(), 4u);
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), 4u);
  EXPECT_EQ(index->query_one(data.queries[0], 2).neighbors.size(), 2u);
}

TEST(TwoStageMutation, FailedAddLeavesBothStagesUntouched) {
  // A batch that cannot be encoded (width mismatch against the fitted
  // encoders) must be rejected before EITHER stage stores anything -
  // otherwise the id spaces drift apart forever.
  const Data data = make_data(30, 6, 2, 311);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 16;
  auto index = make_index("refine", config);
  index->add(data.rows, data.labels);
  const auto& two_stage = dynamic_cast<const TwoStageNnIndex&>(*index);

  const std::vector<std::vector<float>> narrow(4, std::vector<float>(5, 0.1f));
  const std::vector<int> narrow_labels(4, 0);
  EXPECT_THROW(index->add(narrow, narrow_labels), std::invalid_argument);
  EXPECT_EQ(index->size(), 30u);
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), 30u);
  // The index keeps working: adds, erases, and queries stay in lockstep.
  index->add(std::span{data.rows}.subspan(0, 2), std::span{data.labels}.subspan(0, 2));
  EXPECT_EQ(index->size(), 32u);
  EXPECT_EQ(two_stage.coarse_tcam().num_valid(), 32u);
  EXPECT_TRUE(index->erase(31));
  for (const auto& q : data.queries) {
    EXPECT_EQ(index->query_one(q, 3).neighbors.size(), 3u);
  }
}

TEST(TwoStageMargin, ReportsTheNominationCutGap) {
  const Data data = make_data(60, 6, 4, 283);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 24;
  config.candidate_factor = 2;
  auto index = make_index("refine", config);
  index->add(data.rows, data.labels);
  for (const auto& q : data.queries) {
    const QueryTelemetry t = index->query_one(q, 3).telemetry;
    EXPECT_GE(t.coarse_margin, 0.0);
    EXPECT_EQ(t.probes_used, 1u);
  }
  // When every live row is nominated there is no cut, hence no margin.
  const QueryTelemetry all = index->query_one(data.queries[0], 60).telemetry;
  EXPECT_EQ(all.coarse_margin, 0.0);
  EXPECT_EQ(all.fine_candidates, 60u);
  // The exhaustive fallback runs no coarse sweep at all.
  config.refine_exhaustive = true;
  auto fallback = make_index("refine", config);
  fallback->add(data.rows, data.labels);
  const QueryTelemetry bypass = fallback->query_one(data.queries[0], 3).telemetry;
  EXPECT_EQ(bypass.probes_used, 0u);
  EXPECT_EQ(bypass.coarse_margin, 0.0);
}

TEST(TwoStageIdentity, LearnedModelsStillExactWhenNominatingEveryRow) {
  // The signature model only picks candidates; with candidate_factor
  // covering every live row the pipeline must stay bit-identical to the
  // fine backend for the trained and itq models too (and multi-probe).
  const Data data = make_data(50, 6, 4, 293);
  EngineConfig config;
  config.num_features = 6;
  auto fine_alone = make_index("mcam2", config);
  fine_alone->add(data.rows, data.labels);
  for (const char* sig : {"trained", "itq"}) {
    auto index = make_index(std::string{"refine:coarse_bits=16,candidate_factor=1000,"
                                        "probes=4,sig="} +
                                sig + ",fine=mcam2",
                            config);
    index->add(data.rows, data.labels);
    for (const auto& q : data.queries) {
      expect_identical(index->query_one(q, 5), fine_alone->query_one(q, 5),
                       std::string{"learned full-candidates sig="} + sig);
    }
  }
}

TEST(TwoStageSpec, BuildsNestedShardedFineStageFromOneSpecString) {
  const Data data = make_data(70, 6, 3, 251);
  EngineConfig config;
  config.num_features = 6;
  auto index = make_index(
      "refine:coarse_bits=32,candidate_factor=1000,fine=sharded-mcam:bits=2,bank_rows=16",
      config);
  index->add(data.rows, data.labels);
  EXPECT_NE(index->name().find("two-stage"), std::string::npos);
  EXPECT_NE(index->name().find("2-bit MCAM"), std::string::npos);

  auto fine_alone = make_index("sharded-mcam:bits=2,bank_rows=16", config);
  fine_alone->add(data.rows, data.labels);
  for (const auto& q : data.queries) {
    expect_identical(index->query_one(q, 5), fine_alone->query_one(q, 5),
                     "nested sharded fine stage");
  }
}

TEST(TwoStageServing, SnapshotRoundTripsThroughQueryService) {
  // Acceptance: a refine:* index with a trained signature model and
  // multi-probe snapshot-restores through the service with identical
  // answers (the fitted projections persist bit-exactly in format v3).
  const std::string spec =
      "refine:coarse_bits=48,candidate_factor=4,sig=trained,probes=4,"
      "fine=sharded-mcam3:bank_rows=24";
  const Data data = make_data(90, 6, 6, 257);
  EngineConfig config;
  config.num_features = 6;
  auto original = make_index(spec, config);
  original->add(data.rows, data.labels);
  for (std::size_t id : {std::size_t{4}, std::size_t{40}, std::size_t{77}}) {
    ASSERT_TRUE(original->erase(id));
  }

  const std::vector<std::uint8_t> blob = serve::save(*original, spec, config);
  const serve::SnapshotInfo info = serve::inspect(blob);
  EXPECT_EQ(info.engine, "refine");
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_EQ(info.config.coarse_bits, 48u);
  EXPECT_EQ(info.config.candidate_factor, 4u);
  EXPECT_EQ(info.config.sig_model, "trained");
  EXPECT_EQ(info.config.probes, 4u);
  EXPECT_EQ(info.config.fine_spec, "sharded-mcam3:bank_rows=24");

  auto restored = serve::load(blob);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->size(), original->size());
  // The trained projections and thresholds restore bit-exactly.
  const auto& original_model =
      dynamic_cast<const TwoStageNnIndex&>(*original).signature_model();
  const auto& restored_model =
      dynamic_cast<const TwoStageNnIndex&>(*restored).signature_model();
  EXPECT_EQ(restored_model.key(), "trained");
  EXPECT_EQ(restored_model.planes(), original_model.planes());
  EXPECT_EQ(restored_model.thresholds(), original_model.thresholds());

  serve::QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.cache_capacity = 8;
  serve::QueryService service{*restored, service_config};
  for (const auto& q : data.queries) {
    const serve::QueryResponse response = service.query_one(q, 5);
    ASSERT_EQ(response.status, serve::RequestStatus::kOk);
    expect_identical(response.result, original->query_one(q, 5), "served restore");
  }
  // Mutations through the service keep both stages in sync post-restore.
  ASSERT_TRUE(service.erase(50));
  const serve::QueryResponse after = service.query_one(data.queries[0], restored->size());
  ASSERT_EQ(after.status, serve::RequestStatus::kOk);
  for (const Neighbor& n : after.result.neighbors) EXPECT_NE(n.index, 50u);
}

TEST(KConvention, ZeroKEqualsOneKForEveryRegisteredBackend) {
  // The k-convention satellite: k = 0 normalizes to 1-NN identically for
  // all five backends, the sharded twins, and the two-stage pipeline.
  const Data data = make_data(40, 6, 4, 263);
  for (const std::string& name : EngineFactory::instance().registered_names()) {
    EngineConfig config;
    config.num_features = 6;
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 8 : 0;
    config.shard_workers = 1;
    if (name == "refine") config.fine_spec = "euclidean";
    auto index = make_index(name, config);
    index->add(data.rows, data.labels);
    for (const auto& q : data.queries) {
      expect_identical(index->query_one(q, 0), index->query_one(q, 1),
                       name + " k=0 vs k=1");
      EXPECT_EQ(index->query_one(q, 0).neighbors.size(), 1u) << name;
    }
  }
  // The LUT engine is not a registry builtin (it needs a conductance
  // table) but is the fifth backend bound by the same contract.
  experiments::McamLutEngine lut_engine{
      cam::ConductanceLut::nominal(fefet::LevelMap{2}), 2};
  lut_engine.add(data.rows, data.labels);
  for (const auto& q : data.queries) {
    expect_identical(lut_engine.query_one(q, 0), lut_engine.query_one(q, 1),
                     "mcam-lut k=0 vs k=1");
  }
}

TEST(TagBand, ValidationAndErrorPaths) {
  const Data data = make_data(24, 6, 2, 311);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 24;

  // A pipeline built without a tag band rejects the band APIs outright.
  auto bandless = make_index("refine", config);
  auto& bandless_two = dynamic_cast<TwoStageNnIndex&>(*bandless);
  const std::vector<std::vector<std::uint8_t>> one_band{{1, 0, 0, 0}};
  EXPECT_THROW(bandless_two.add_tagged(
                   std::span<const std::vector<float>>(data.rows.data(), 1),
                   std::span<const int>(data.labels.data(), 1), one_band),
               std::invalid_argument);
  bandless->add(data.rows, data.labels);
  EXPECT_THROW(
      (void)bandless_two.query_filtered(data.queries[0], 3, one_band[0], {}),
      std::invalid_argument);

  // With a band: filtered queries before add have no coarse stage to sweep.
  config.tag_bits = 4;
  auto banded = make_index("refine", config);
  auto& banded_two = dynamic_cast<TwoStageNnIndex&>(*banded);
  EXPECT_EQ(banded_two.tag_bits(), 4u);
  const std::vector<std::uint8_t> band{1, 0, 0, 0};
  EXPECT_THROW((void)banded_two.query_filtered(data.queries[0], 3, band, {}),
               std::logic_error);
  // Wrong bitmap width on add: rejected before anything is mutated.
  const std::vector<std::vector<std::uint8_t>> wrong(data.rows.size(),
                                                     std::vector<std::uint8_t>{1, 0});
  EXPECT_THROW(banded_two.add_tagged(data.rows, data.labels, wrong),
               std::invalid_argument);
  EXPECT_EQ(banded->size(), 0u);
  const std::vector<std::vector<std::uint8_t>> bands(data.rows.size(), band);
  banded_two.add_tagged(data.rows, data.labels, bands);
  EXPECT_THROW((void)banded_two.query_filtered(data.queries[0], 3,
                                               std::vector<std::uint8_t>{1, 0}, {}),
               std::invalid_argument);

  // Exhaustive fallback skips the coarse stage entirely - there is no
  // TCAM sweep to push the band into, so the call is a contract error.
  config.refine_exhaustive = true;
  auto exhaustive = make_index("refine", config);
  auto& exhaustive_two = dynamic_cast<TwoStageNnIndex&>(*exhaustive);
  exhaustive_two.add_tagged(data.rows, data.labels, bands);
  EXPECT_THROW((void)exhaustive_two.query_filtered(data.queries[0], 3, band, {}),
               std::logic_error);
}

TEST(TagBand, FilteredQueryMatchesSubsetPostFilterExactly) {
  // Acceptance: with a candidate budget covering every eligible row, the
  // band-pushed coarse sweep returns bit-identically what the fine stage
  // says about the predicate-satisfying subset - per fine backend.
  const Data data = make_data(36, 6, 5, 331);
  for (const std::string& fine :
       {std::string{"euclidean"}, std::string{"mcam3"},
        std::string{"sharded-mcam3:bank_rows=16,shard_workers=1"}}) {
    EngineConfig config;
    config.num_features = 6;
    config.fine_spec = fine;
    config.coarse_bits = 32;
    config.tag_bits = 8;
    config.candidate_factor = 64;
    auto index = make_index("refine", config);
    auto& two = dynamic_cast<TwoStageNnIndex&>(*index);
    EXPECT_NE(two.name().find("8t"), std::string::npos);

    // Rows carry one band bit each: slot r % 3. Slot 7 stays empty.
    std::vector<std::vector<std::uint8_t>> bands;
    for (std::size_t r = 0; r < data.rows.size(); ++r) {
      std::vector<std::uint8_t> b(8, 0);
      b[r % 3] = 1;
      bands.push_back(std::move(b));
    }
    two.add_tagged(data.rows, data.labels, bands);

    for (std::size_t group = 0; group < 3; ++group) {
      std::vector<std::size_t> members;
      for (std::size_t r = 0; r < data.rows.size(); ++r) {
        if (r % 3 == group) members.push_back(r);
      }
      std::vector<std::uint8_t> required(8, 0);
      required[group] = 1;
      const auto verify = [&](std::size_t id) { return id % 3 == group; };
      for (const auto& q : data.queries) {
        for (std::size_t k : {std::size_t{1}, std::size_t{5}}) {
          const auto filtered = two.query_filtered(q, k, required, verify);
          ASSERT_TRUE(filtered.has_value()) << fine;
          expect_identical(*filtered, index->query_subset(q, members, k),
                           fine + " band vs subset");
          // Exactly one band bit per row: no hash collisions, so the
          // in-array exclusion count is the full complement.
          EXPECT_EQ(filtered->telemetry.filtered_out,
                    data.rows.size() - members.size())
              << fine;
          EXPECT_EQ(filtered->telemetry.fine_candidates, members.size()) << fine;
        }
      }
    }

    // A slot no row carries: nothing is eligible, the caller falls back.
    std::vector<std::uint8_t> empty_slot(8, 0);
    empty_slot[7] = 1;
    EXPECT_FALSE(two.query_filtered(data.queries[0], 3, empty_slot, {}).has_value());
    // Verify rejecting every nominee behaves the same as no eligible row.
    std::vector<std::uint8_t> group0(8, 0);
    group0[0] = 1;
    EXPECT_FALSE(two.query_filtered(data.queries[0], 3, group0,
                                    [](std::size_t) { return false; })
                     .has_value());
  }
}

TEST(TagBand, UntaggedAndErasedRowsAreNeverEligible) {
  const Data data = make_data(30, 6, 4, 347);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 32;
  config.tag_bits = 6;
  config.candidate_factor = 64;
  auto index = make_index("refine", config);
  auto& two = dynamic_cast<TwoStageNnIndex&>(*index);

  // First 20 rows tagged on slot 0; last 10 added untagged (all-zero band).
  std::vector<std::vector<std::uint8_t>> bands(20, std::vector<std::uint8_t>(6, 0));
  for (auto& b : bands) b[0] = 1;
  two.add_tagged(std::span<const std::vector<float>>(data.rows.data(), 20),
                 std::span<const int>(data.labels.data(), 20), bands);
  index->add(std::span<const std::vector<float>>(data.rows.data() + 20, 10),
             std::span<const int>(data.labels.data() + 20, 10));
  ASSERT_EQ(index->size(), 30u);

  std::vector<std::uint8_t> required(6, 0);
  required[0] = 1;
  for (const auto& q : data.queries) {
    const auto filtered = two.query_filtered(q, 30, required, {});
    ASSERT_TRUE(filtered.has_value());
    EXPECT_EQ(filtered->neighbors.size(), 20u);
    for (const Neighbor& n : filtered->neighbors) EXPECT_LT(n.index, 20u);
    EXPECT_EQ(filtered->telemetry.filtered_out, 10u);
  }

  ASSERT_TRUE(index->erase(7));
  const auto after = two.query_filtered(data.queries[0], 30, required, {});
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->neighbors.size(), 19u);
  for (const Neighbor& n : after->neighbors) EXPECT_NE(n.index, 7u);
}

TEST(TagBand, SnapshotRoundTripRestoresBandFiltering) {
  // The banded payload ("two-stage-v3") restores the widened TCAM rows
  // bit-identically: filtered and unfiltered answers survive save/load.
  const Data data = make_data(32, 6, 4, 359);
  const std::string spec =
      "refine:coarse_bits=32,tag_bits=8,candidate_factor=64,sig=trained,"
      "fine=euclidean";
  EngineConfig config;
  config.num_features = 6;
  auto original = make_index(spec, config);
  auto& original_two = dynamic_cast<TwoStageNnIndex&>(*original);
  std::vector<std::vector<std::uint8_t>> bands;
  for (std::size_t r = 0; r < data.rows.size(); ++r) {
    std::vector<std::uint8_t> b(8, 0);
    b[r % 2] = 1;
    bands.push_back(std::move(b));
  }
  original_two.add_tagged(data.rows, data.labels, bands);
  ASSERT_TRUE(original->erase(4));

  const std::vector<std::uint8_t> blob = serve::save(*original, spec, config);
  const serve::SnapshotInfo info = serve::inspect(blob);
  EXPECT_EQ(info.version, serve::kSnapshotVersion);
  EXPECT_EQ(info.config.tag_bits, 8u);

  auto restored = serve::load(blob);
  auto& restored_two = dynamic_cast<TwoStageNnIndex&>(*restored);
  EXPECT_EQ(restored_two.tag_bits(), 8u);
  std::vector<std::uint8_t> required(8, 0);
  required[1] = 1;
  const auto verify = [](std::size_t id) { return id % 2 == 1; };
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 5), original->query_one(q, 5),
                     "banded restore unfiltered");
    const auto a = original_two.query_filtered(q, 5, required, verify);
    const auto b = restored_two.query_filtered(q, 5, required, verify);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    expect_identical(*a, *b, "banded restore filtered");
  }

  // Config/payload band mismatches fail loudly in both directions.
  EngineConfig bandless_config = config;
  bandless_config.tag_bits = 0;
  {
    auto target = make_index("refine:coarse_bits=32,candidate_factor=64,"
                             "sig=trained,fine=euclidean",
                             bandless_config);
    serve::io::Writer payload;
    original_two.save_state(payload);
    const std::vector<std::uint8_t>& bytes = payload.buffer();
    serve::io::Reader in{bytes};
    EXPECT_THROW(target->load_state(in), serve::io::SnapshotError);
  }
  {
    auto bandless = make_index("refine:coarse_bits=32,candidate_factor=64,"
                               "sig=trained,fine=euclidean",
                               bandless_config);
    bandless->add(data.rows, data.labels);
    serve::io::Writer payload;
    bandless->save_state(payload);
    const std::vector<std::uint8_t>& bytes = payload.buffer();
    serve::io::Reader in{bytes};
    EXPECT_THROW(original_two.load_state(in), serve::io::SnapshotError);
  }
}

}  // namespace
}  // namespace mcam::search
