#include "cam/tcam.hpp"

#include "sig/multiprobe.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace mcam::cam {
namespace {

std::vector<std::uint8_t> bits(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(TcamArray, HammingDistances) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({0, 0, 0, 0}));
  tcam.add_row_bits(bits({1, 1, 1, 1}));
  tcam.add_row_bits(bits({1, 0, 1, 0}));
  const auto d = tcam.hamming_distances(bits({0, 0, 0, 0}));
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 4, 2}));
}

TEST(TcamArray, DontCareMatchesBoth) {
  TcamArray tcam{TcamArrayConfig{}};
  const std::vector<Trit> word{Trit::kOne, Trit::kDontCare, Trit::kZero};
  tcam.add_row(word);
  EXPECT_EQ(tcam.hamming_distances(bits({1, 0, 0}))[0], 0u);
  EXPECT_EQ(tcam.hamming_distances(bits({1, 1, 0}))[0], 0u);
  EXPECT_EQ(tcam.hamming_distances(bits({0, 1, 0}))[0], 1u);
}

TEST(TcamArray, ElectricalOrderingMatchesHamming) {
  TcamArray tcam{TcamArrayConfig{}};
  Rng rng{3};
  std::vector<std::vector<std::uint8_t>> rows;
  for (int r = 0; r < 10; ++r) {
    std::vector<std::uint8_t> word(32);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    rows.push_back(word);
    tcam.add_row_bits(word);
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<std::uint8_t> query(32);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    const auto g = tcam.search_conductances(query);
    const auto d = tcam.hamming_distances(query);
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t j = 0; j < g.size(); ++j) {
        if (d[i] < d[j]) {
          EXPECT_LT(g[i], g[j]);
        }
      }
    }
  }
}

TEST(TcamArray, NearestIsMinimumHamming) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 1, 0, 0, 1}));
  tcam.add_row_bits(bits({0, 1, 0, 0, 1}));
  tcam.add_row_bits(bits({1, 1, 1, 1, 1}));
  const SearchOutcome outcome = tcam.nearest(bits({0, 1, 0, 0, 0}));
  EXPECT_EQ(outcome.row, 1u);
}

TEST(TcamArray, MatchlineTimingAgreesWithIdeal) {
  TcamArrayConfig ideal_config;
  TcamArrayConfig timing_config;
  timing_config.sensing = SensingMode::kMatchlineTiming;
  TcamArray ideal{ideal_config};
  TcamArray timing{timing_config};
  Rng rng{7};
  for (int r = 0; r < 8; ++r) {
    std::vector<std::uint8_t> word(24);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    ideal.add_row_bits(word);
    timing.add_row_bits(word);
  }
  for (int q = 0; q < 15; ++q) {
    std::vector<std::uint8_t> query(24);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(ideal.nearest(query).row, timing.nearest(query).row);
  }
}

TEST(TcamArray, ExactMatchOnlyAtZeroDistance) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 0, 1}));
  tcam.add_row_bits(bits({1, 1, 1}));
  const auto matches = tcam.exact_matches(bits({1, 0, 1}), 10e-9);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 0u);
}

TEST(TcamArray, AllDontCareRowMatchesEverything) {
  TcamArray tcam{TcamArrayConfig{}};
  const std::vector<Trit> wildcard(6, Trit::kDontCare);
  tcam.add_row(wildcard);
  Rng rng{11};
  for (int q = 0; q < 8; ++q) {
    std::vector<std::uint8_t> query(6);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(tcam.hamming_distances(query)[0], 0u);
    EXPECT_FALSE(tcam.exact_matches(query, 10e-9).empty());
  }
}

TEST(TcamArray, Validation) {
  TcamArray tcam{TcamArrayConfig{}};
  EXPECT_THROW((void)tcam.add_row(std::vector<Trit>{}), std::invalid_argument);
  tcam.add_row_bits(bits({1, 0}));
  EXPECT_THROW((void)tcam.add_row_bits(bits({1, 0, 1})), std::invalid_argument);
  EXPECT_THROW((void)tcam.search_conductances(bits({1})), std::invalid_argument);
  EXPECT_THROW((void)tcam.hamming_distances(bits({1, 0, 1})), std::invalid_argument);
}

TEST(TcamArray, NearestOnEmptyThrows) {
  TcamArray tcam{TcamArrayConfig{}};
  EXPECT_THROW((void)tcam.nearest(bits({1})), std::logic_error);
}

TEST(TcamArray, ClearResets) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 1}));
  tcam.clear();
  EXPECT_EQ(tcam.num_rows(), 0u);
  tcam.add_row_bits(bits({1, 1, 1}));
  EXPECT_EQ(tcam.word_length(), 3u);
}

TEST(TcamArray, MultiProbeSweepMatchesFlippedHammingDistances) {
  // Each multi-probe flip mask perturbs the query signature; the TCAM
  // sweep for that probe must rank by the Hamming distance to the flipped
  // query, and the per-row best across probes must equal the analytic
  // min-over-probes distance.
  TcamArray tcam{TcamArrayConfig{}};
  Rng rng{13};
  std::vector<std::vector<std::uint8_t>> rows;
  for (int r = 0; r < 12; ++r) {
    std::vector<std::uint8_t> word(10);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    rows.push_back(word);
    tcam.add_row_bits(word);
  }
  std::vector<std::uint8_t> query(10);
  std::vector<float> margins(10);
  for (std::size_t i = 0; i < 10; ++i) {
    query[i] = rng.bernoulli(0.5) ? 1 : 0;
    margins[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  const auto probes = sig::MultiProbe::sequence(margins, 6);
  ASSERT_EQ(probes.size(), 6u);
  std::vector<std::size_t> best_distance(12, SIZE_MAX);
  std::vector<double> best_conductance(12, 1e30);
  for (const auto& flips : probes) {
    std::vector<std::uint8_t> probe_query = query;
    for (std::size_t bit : flips) probe_query[bit] ^= 1u;
    const auto g = tcam.search_conductances(probe_query);
    const auto d = tcam.hamming_distances(probe_query);
    for (std::size_t i = 0; i < 12; ++i) {
      // Per-probe electrical ordering still tracks Hamming distance.
      for (std::size_t j = 0; j < 12; ++j) {
        if (d[i] < d[j]) {
          EXPECT_LT(g[i], g[j]);
        }
      }
      best_distance[i] = std::min(best_distance[i], d[i]);
      best_conductance[i] = std::min(best_conductance[i], g[i]);
    }
  }
  // Best-of-probes conductance orders rows exactly like the analytic
  // min-over-probes Hamming distance.
  for (std::size_t i = 0; i < 12; ++i) {
    for (std::size_t j = 0; j < 12; ++j) {
      if (best_distance[i] < best_distance[j]) {
        EXPECT_LT(best_conductance[i], best_conductance[j]);
      }
    }
  }
}

TEST(TcamArray, TombstonedRowsNeverNominatedAcrossAnyProbe) {
  // Validity latches gate the ranking, not the sweep: a tombstoned row
  // still has a conductance, but it must never appear in the nomination,
  // no matter which probe would have matched it best.
  TcamArray tcam{TcamArrayConfig{}};
  Rng rng{29};
  for (int r = 0; r < 16; ++r) {
    std::vector<std::uint8_t> word(8);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    tcam.add_row_bits(word);
  }
  std::set<std::size_t> dead;
  for (std::size_t id : {std::size_t{0}, std::size_t{5}, std::size_t{6},
                         std::size_t{11}, std::size_t{15}}) {
    ASSERT_TRUE(tcam.invalidate_row(id));
    dead.insert(id);
  }
  EXPECT_EQ(tcam.num_valid(), 11u);

  std::vector<std::uint8_t> query(8);
  std::vector<float> margins(8);
  for (std::size_t i = 0; i < 8; ++i) {
    query[i] = rng.bernoulli(0.5) ? 1 : 0;
    margins[i] = static_cast<float>(rng.normal(0.0, 1.0));
  }
  // The pipeline's best-of-probes reduction: min conductance per row.
  const auto probes = sig::MultiProbe::sequence(margins, 8);
  std::vector<double> best = tcam.search_conductances(query);
  for (std::size_t p = 1; p < probes.size(); ++p) {
    std::vector<std::uint8_t> probe_query = query;
    for (std::size_t bit : probes[p]) probe_query[bit] ^= 1u;
    const auto g = tcam.search_conductances(probe_query);
    for (std::size_t i = 0; i < best.size(); ++i) best[i] = std::min(best[i], g[i]);
  }
  for (std::size_t k = 1; k <= 11; ++k) {
    const auto ranked = rank_by_sensing(best, tcam.valid_mask(), SensingMode::kIdealSum,
                                        circuit::MatchlineParams{}, tcam.word_length(),
                                        0.0, k);
    EXPECT_EQ(ranked.size(), k);
    for (std::size_t row : ranked) {
      EXPECT_FALSE(dead.count(row)) << "tombstoned row " << row << " nominated at k=" << k;
    }
  }
  // k past the valid count clamps to the survivors - dead rows never
  // backfill the nomination.
  const auto all = rank_by_sensing(best, tcam.valid_mask(), SensingMode::kIdealSum,
                                   circuit::MatchlineParams{}, tcam.word_length(), 0.0,
                                   16);
  EXPECT_EQ(all.size(), 11u);
  for (std::size_t row : all) EXPECT_FALSE(dead.count(row));
}

TEST(TcamArray, TernaryQueryMatchesBinaryWhenAllBitsDefinite) {
  // A ternary query with no don't-cares drives the same search lines the
  // binary overload does, so the conductances must be bit-identical.
  TcamArrayConfig config;
  config.vth_sigma = 0.03;  // Programming noise must not break the identity.
  config.seed = 11;
  TcamArray tcam{config};
  Rng rng{17};
  for (int r = 0; r < 12; ++r) {
    std::vector<std::uint8_t> word(16);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    tcam.add_row_bits(word);
  }
  for (int q = 0; q < 6; ++q) {
    std::vector<std::uint8_t> query(16);
    std::vector<Trit> trits(16);
    for (std::size_t i = 0; i < query.size(); ++i) {
      query[i] = rng.bernoulli(0.5) ? 1 : 0;
      trits[i] = query[i] != 0 ? Trit::kOne : Trit::kZero;
    }
    const auto binary = tcam.search_conductances(query);
    const auto ternary = tcam.search_conductances(std::span<const Trit>{trits});
    ASSERT_EQ(binary.size(), ternary.size());
    for (std::size_t r = 0; r < binary.size(); ++r) {
      EXPECT_EQ(binary[r], ternary[r]) << "row " << r;  // Bit-exact, not approx.
    }
  }
}

TEST(TcamArray, TernaryDontCareColumnsContributeZeroConductance) {
  // Query-side kDontCare = both search lines low: the column's cells see
  // no gate drive, so they add zero conductance to every matchline - the
  // physics the tag band's masked ranking sweep relies on.
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 0, 1, 0}));
  tcam.add_row_bits(bits({0, 1, 0, 1}));

  const std::vector<Trit> blind(4, Trit::kDontCare);
  for (double g : tcam.search_conductances(std::span<const Trit>{blind})) {
    EXPECT_DOUBLE_EQ(g, 0.0);
  }

  // Masking a mismatching column removes exactly its contribution: the
  // remaining columns read identically to a binary query over them.
  const std::vector<Trit> partial{Trit::kOne, Trit::kDontCare, Trit::kOne,
                                  Trit::kDontCare};
  const auto masked = tcam.search_conductances(std::span<const Trit>{partial});
  // Matchline conductance is mismatch discharge (smaller = closer): row 0
  // matches both driven columns, row 1 mismatches both.
  EXPECT_LT(masked[0], masked[1]);
}

TEST(TcamArray, TernaryMatchMaskRespectsBothSidesOfDontCare) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row(std::vector<Trit>{Trit::kOne, Trit::kDontCare, Trit::kZero});
  tcam.add_row(std::vector<Trit>{Trit::kZero, Trit::kOne, Trit::kZero});
  tcam.add_row(std::vector<Trit>{Trit::kOne, Trit::kOne, Trit::kOne});

  // Query don't-cares match anything; stored don't-cares match any query.
  const std::vector<Trit> q1{Trit::kOne, Trit::kDontCare, Trit::kDontCare};
  EXPECT_EQ(tcam.ternary_match_mask(std::span<const Trit>{q1}),
            (std::vector<std::uint8_t>{1, 0, 1}));
  const std::vector<Trit> q2{Trit::kDontCare, Trit::kZero, Trit::kDontCare};
  EXPECT_EQ(tcam.ternary_match_mask(std::span<const Trit>{q2}),
            (std::vector<std::uint8_t>{1, 0, 0}));
  const std::vector<Trit> all_dc(3, Trit::kDontCare);
  EXPECT_EQ(tcam.ternary_match_mask(std::span<const Trit>{all_dc}),
            (std::vector<std::uint8_t>{1, 1, 1}));

  // Band-style use: exact bits in a suffix band, don't-care elsewhere,
  // combined with a sig-only conductance sweep - the mask gates
  // eligibility, the sweep still ranks by signature alone.
  const std::vector<Trit> band_gate{Trit::kDontCare, Trit::kDontCare, Trit::kOne};
  EXPECT_EQ(tcam.ternary_match_mask(std::span<const Trit>{band_gate}),
            (std::vector<std::uint8_t>{0, 0, 1}));

  const std::vector<Trit> wrong_width(4, Trit::kDontCare);
  EXPECT_THROW((void)tcam.ternary_match_mask(std::span<const Trit>{wrong_width}),
               std::invalid_argument);
  EXPECT_THROW((void)tcam.search_conductances(std::span<const Trit>{wrong_width}),
               std::invalid_argument);
}

TEST(TcamArray, ProgrammingNoiseKeepsSmallDistanceOrdering) {
  TcamArrayConfig config;
  config.vth_sigma = 0.04;  // Well inside the 240 mV half-window of 1-bit cells.
  config.seed = 5;
  TcamArray tcam{config};
  tcam.add_row_bits(bits({0, 0, 0, 0, 0, 0, 0, 0}));
  tcam.add_row_bits(bits({1, 1, 1, 1, 0, 0, 0, 0}));
  const SearchOutcome outcome = tcam.nearest(bits({0, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(outcome.row, 0u);
}

}  // namespace
}  // namespace mcam::cam
