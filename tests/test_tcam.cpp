#include "cam/tcam.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcam::cam {
namespace {

std::vector<std::uint8_t> bits(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(TcamArray, HammingDistances) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({0, 0, 0, 0}));
  tcam.add_row_bits(bits({1, 1, 1, 1}));
  tcam.add_row_bits(bits({1, 0, 1, 0}));
  const auto d = tcam.hamming_distances(bits({0, 0, 0, 0}));
  EXPECT_EQ(d, (std::vector<std::size_t>{0, 4, 2}));
}

TEST(TcamArray, DontCareMatchesBoth) {
  TcamArray tcam{TcamArrayConfig{}};
  const std::vector<Trit> word{Trit::kOne, Trit::kDontCare, Trit::kZero};
  tcam.add_row(word);
  EXPECT_EQ(tcam.hamming_distances(bits({1, 0, 0}))[0], 0u);
  EXPECT_EQ(tcam.hamming_distances(bits({1, 1, 0}))[0], 0u);
  EXPECT_EQ(tcam.hamming_distances(bits({0, 1, 0}))[0], 1u);
}

TEST(TcamArray, ElectricalOrderingMatchesHamming) {
  TcamArray tcam{TcamArrayConfig{}};
  Rng rng{3};
  std::vector<std::vector<std::uint8_t>> rows;
  for (int r = 0; r < 10; ++r) {
    std::vector<std::uint8_t> word(32);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    rows.push_back(word);
    tcam.add_row_bits(word);
  }
  for (int q = 0; q < 10; ++q) {
    std::vector<std::uint8_t> query(32);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    const auto g = tcam.search_conductances(query);
    const auto d = tcam.hamming_distances(query);
    for (std::size_t i = 0; i < g.size(); ++i) {
      for (std::size_t j = 0; j < g.size(); ++j) {
        if (d[i] < d[j]) EXPECT_LT(g[i], g[j]);
      }
    }
  }
}

TEST(TcamArray, NearestIsMinimumHamming) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 1, 0, 0, 1}));
  tcam.add_row_bits(bits({0, 1, 0, 0, 1}));
  tcam.add_row_bits(bits({1, 1, 1, 1, 1}));
  const SearchOutcome outcome = tcam.nearest(bits({0, 1, 0, 0, 0}));
  EXPECT_EQ(outcome.row, 1u);
}

TEST(TcamArray, MatchlineTimingAgreesWithIdeal) {
  TcamArrayConfig ideal_config;
  TcamArrayConfig timing_config;
  timing_config.sensing = SensingMode::kMatchlineTiming;
  TcamArray ideal{ideal_config};
  TcamArray timing{timing_config};
  Rng rng{7};
  for (int r = 0; r < 8; ++r) {
    std::vector<std::uint8_t> word(24);
    for (auto& b : word) b = rng.bernoulli(0.5) ? 1 : 0;
    ideal.add_row_bits(word);
    timing.add_row_bits(word);
  }
  for (int q = 0; q < 15; ++q) {
    std::vector<std::uint8_t> query(24);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(ideal.nearest(query).row, timing.nearest(query).row);
  }
}

TEST(TcamArray, ExactMatchOnlyAtZeroDistance) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 0, 1}));
  tcam.add_row_bits(bits({1, 1, 1}));
  const auto matches = tcam.exact_matches(bits({1, 0, 1}), 10e-9);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 0u);
}

TEST(TcamArray, AllDontCareRowMatchesEverything) {
  TcamArray tcam{TcamArrayConfig{}};
  const std::vector<Trit> wildcard(6, Trit::kDontCare);
  tcam.add_row(wildcard);
  Rng rng{11};
  for (int q = 0; q < 8; ++q) {
    std::vector<std::uint8_t> query(6);
    for (auto& b : query) b = rng.bernoulli(0.5) ? 1 : 0;
    EXPECT_EQ(tcam.hamming_distances(query)[0], 0u);
    EXPECT_FALSE(tcam.exact_matches(query, 10e-9).empty());
  }
}

TEST(TcamArray, Validation) {
  TcamArray tcam{TcamArrayConfig{}};
  EXPECT_THROW((void)tcam.add_row(std::vector<Trit>{}), std::invalid_argument);
  tcam.add_row_bits(bits({1, 0}));
  EXPECT_THROW((void)tcam.add_row_bits(bits({1, 0, 1})), std::invalid_argument);
  EXPECT_THROW((void)tcam.search_conductances(bits({1})), std::invalid_argument);
  EXPECT_THROW((void)tcam.hamming_distances(bits({1, 0, 1})), std::invalid_argument);
}

TEST(TcamArray, NearestOnEmptyThrows) {
  TcamArray tcam{TcamArrayConfig{}};
  EXPECT_THROW((void)tcam.nearest(bits({1})), std::logic_error);
}

TEST(TcamArray, ClearResets) {
  TcamArray tcam{TcamArrayConfig{}};
  tcam.add_row_bits(bits({1, 1}));
  tcam.clear();
  EXPECT_EQ(tcam.num_rows(), 0u);
  tcam.add_row_bits(bits({1, 1, 1}));
  EXPECT_EQ(tcam.word_length(), 3u);
}

TEST(TcamArray, ProgrammingNoiseKeepsSmallDistanceOrdering) {
  TcamArrayConfig config;
  config.vth_sigma = 0.04;  // Well inside the 240 mV half-window of 1-bit cells.
  config.seed = 5;
  TcamArray tcam{config};
  tcam.add_row_bits(bits({0, 0, 0, 0, 0, 0, 0, 0}));
  tcam.add_row_bits(bits({1, 1, 1, 1, 0, 0, 0, 0}));
  const SearchOutcome outcome = tcam.nearest(bits({0, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(outcome.row, 0u);
}

}  // namespace
}  // namespace mcam::cam
