// The batched top-k NnIndex API: native top-k ranking validated against
// the exact software index, batch-vs-sequential equality (including the
// parallel BatchExecutor), the string-keyed EngineFactory registry, and
// incremental add-after-calibration semantics.
#include "search/batch.hpp"
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "search/knn.hpp"

#include "distance/mcam_distance.hpp"
#include "experiments/lut_engine.hpp"
#include "experiments/stack.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace mcam::search {
namespace {

/// Labeled Gaussian blobs in `dim` dimensions, one blob per class.
struct Blobs {
  std::vector<std::vector<float>> train;
  std::vector<int> train_labels;
  std::vector<std::vector<float>> queries;
};

Blobs make_blobs(std::size_t per_class, std::size_t classes, std::size_t dim,
                 double spread, std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  const auto sample = [&](std::size_t cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(static_cast<double>(cls) * 2.0 +
                                               static_cast<double>(i % 3) * 0.4,
                                           spread));
    }
    return v;
  };
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      blobs.train.push_back(sample(cls));
      blobs.train_labels.push_back(static_cast<int>(cls));
      blobs.queries.push_back(sample(cls));
    }
  }
  return blobs;
}

/// Every engine's invariants: sorted scores, distinct indices, k clamping,
/// top-1 == predict, telemetry counters.
void check_query_invariants(const NnIndex& index, std::span<const std::vector<float>> queries,
                            std::size_t k, bool cam_engine) {
  for (const auto& q : queries) {
    const QueryResult result = index.query_one(q, k);
    const std::size_t expect = std::min(std::max<std::size_t>(k, 1), index.size());
    ASSERT_EQ(result.neighbors.size(), expect);
    std::set<std::size_t> seen;
    for (std::size_t i = 0; i < result.neighbors.size(); ++i) {
      seen.insert(result.neighbors[i].index);
      if (i > 0) {
        EXPECT_GE(result.neighbors[i].distance, result.neighbors[i - 1].distance);
      }
    }
    EXPECT_EQ(seen.size(), result.neighbors.size());
    // (The deprecated predict shim's top-1 consistency lives in
    // test_deprecated_shims.cpp so this suite compiles warning-clean
    // under -Werror=deprecated-declarations.)
    EXPECT_EQ(result.telemetry.candidates, index.size());
    if (cam_engine) {
      EXPECT_EQ(result.telemetry.sense_events, expect);
      EXPECT_GT(result.telemetry.energy_j, 0.0);
    }
  }
}

TEST(NnIndexTopK, McamRankingMatchesExactIndexUnderIdealSensing) {
  // Acceptance: the MCAM's matchline-current ordering must equal an exact
  // software scan of the *same* distance function (nominal LUT over the
  // engine's own quantized levels) - no variation, ideal sensing.
  const Blobs blobs = make_blobs(12, 4, 8, 0.5, 31);
  McamNnEngine engine{};
  engine.add(blobs.train, blobs.train_labels);

  const distance::McamDistance lut_distance{engine.array().lut()};
  const encoding::UniformQuantizer& quantizer = engine.quantizer();
  ExactNnIndex reference{[&](std::span<const float> a, std::span<const float> b) {
    return lut_distance(quantizer.quantize(a), quantizer.quantize(b));
  }};
  reference.add_all(blobs.train, blobs.train_labels);

  for (const auto& q : blobs.queries) {
    const QueryResult result = engine.query_one(q, 5);
    const std::vector<Neighbor> expected = reference.k_nearest(q, 5);
    ASSERT_EQ(result.neighbors.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(result.neighbors[i].index, expected[i].index) << "rank " << i;
      EXPECT_EQ(result.neighbors[i].label, expected[i].label) << "rank " << i;
      EXPECT_NEAR(result.neighbors[i].distance, expected[i].distance,
                  1e-12 + 1e-9 * expected[i].distance);
    }
  }
}

TEST(NnIndexTopK, LutEngineAgreesWithArrayEngineTopK) {
  const Blobs blobs = make_blobs(10, 3, 6, 0.5, 33);
  const experiments::Stack stack;
  experiments::McamLutEngine lut_engine{
      cam::ConductanceLut::nominal(stack.level_map(3), stack.channel()), 3};
  McamNnEngine array_engine{};
  lut_engine.add(blobs.train, blobs.train_labels);
  array_engine.add(blobs.train, blobs.train_labels);
  for (const auto& q : blobs.queries) {
    const auto a = lut_engine.query_one(q, 4);
    const auto b = array_engine.query_one(q, 4);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    for (std::size_t i = 0; i < a.neighbors.size(); ++i) {
      EXPECT_EQ(a.neighbors[i].index, b.neighbors[i].index) << "rank " << i;
    }
  }
}

TEST(NnIndexTopK, InvariantsHoldForEveryBackend) {
  const Blobs blobs = make_blobs(8, 3, 8, 0.4, 35);
  SoftwareNnEngine software{"euclidean"};
  TcamLshEngine tcam{64, 5};
  McamNnEngine mcam{};
  software.add(blobs.train, blobs.train_labels);
  tcam.add(blobs.train, blobs.train_labels);
  mcam.add(blobs.train, blobs.train_labels);
  for (std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{100}}) {
    check_query_invariants(software, blobs.queries, k, false);
    check_query_invariants(tcam, blobs.queries, k, true);
    check_query_invariants(mcam, blobs.queries, k, true);
  }
}

TEST(NnIndexTopK, TimingSensedTopOneMatchesWtaWinner) {
  // Under kMatchlineTiming with a coarse sense clock, the top-1 of the
  // ranked list must be exactly the row the WTA amplifier latches.
  const Blobs blobs = make_blobs(10, 3, 8, 0.6, 37);
  cam::McamArrayConfig config;
  config.sensing = cam::SensingMode::kMatchlineTiming;
  config.sense_clock_period = 1e-9;  // Coarse clock: ties are frequent.
  McamNnEngine engine{config};
  engine.add(blobs.train, blobs.train_labels);
  for (const auto& q : blobs.queries) {
    const auto levels = engine.quantizer().quantize(q);
    EXPECT_EQ(engine.query_one(q, 3).neighbors.front().index,
              engine.array().nearest(levels).row);
  }
}

TEST(NnIndexBatch, BatchEqualsSequentialForAllPaperEngines) {
  const Blobs blobs = make_blobs(10, 4, 8, 0.5, 41);
  SoftwareNnEngine software{"cosine"};
  TcamLshEngine tcam{64, 7};
  McamNnEngine mcam{};
  for (NnIndex* index : {static_cast<NnIndex*>(&software), static_cast<NnIndex*>(&tcam),
                         static_cast<NnIndex*>(&mcam)}) {
    index->add(blobs.train, blobs.train_labels);
    const std::vector<QueryResult> batched = index->query(blobs.queries, 3);
    ASSERT_EQ(batched.size(), blobs.queries.size());
    for (std::size_t i = 0; i < blobs.queries.size(); ++i) {
      const QueryResult single = index->query_one(blobs.queries[i], 3);
      EXPECT_EQ(batched[i].label, single.label) << index->name();
      ASSERT_EQ(batched[i].neighbors.size(), single.neighbors.size());
      for (std::size_t n = 0; n < single.neighbors.size(); ++n) {
        EXPECT_EQ(batched[i].neighbors[n].index, single.neighbors[n].index);
        EXPECT_DOUBLE_EQ(batched[i].neighbors[n].distance, single.neighbors[n].distance);
      }
    }
  }
}

TEST(NnIndexBatch, ParallelExecutorMatchesSequentialAtEveryThreadCount) {
  const Blobs blobs = make_blobs(15, 4, 8, 0.5, 43);
  McamNnEngine engine{};
  engine.add(blobs.train, blobs.train_labels);
  const std::vector<QueryResult> sequential = engine.query(blobs.queries, 2);
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    BatchOptions options;
    options.num_threads = threads;
    options.min_shard_size = 1;
    const BatchExecutor executor{options};
    const std::vector<QueryResult> parallel = executor.run(engine, blobs.queries, 2);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].label, sequential[i].label) << threads << " threads";
      ASSERT_EQ(parallel[i].neighbors.size(), sequential[i].neighbors.size());
      for (std::size_t n = 0; n < sequential[i].neighbors.size(); ++n) {
        EXPECT_EQ(parallel[i].neighbors[n].index, sequential[i].neighbors[n].index);
        EXPECT_DOUBLE_EQ(parallel[i].neighbors[n].distance,
                         sequential[i].neighbors[n].distance);
      }
    }
  }
}

TEST(NnIndexBatch, ExecutorPropagatesWorkerExceptions) {
  McamNnEngine engine{};
  const Blobs blobs = make_blobs(4, 2, 8, 0.5, 45);
  engine.add(blobs.train, blobs.train_labels);
  // One malformed query (wrong dimension) inside a parallel batch.
  std::vector<std::vector<float>> batch = blobs.queries;
  batch[2] = {1.0f, 2.0f};
  BatchOptions options;
  options.num_threads = 4;
  options.min_shard_size = 1;
  EXPECT_THROW((void)BatchExecutor{options}.run(engine, batch, 1), std::invalid_argument);
}

TEST(NnIndexBatch, EmptyBatchYieldsNoResults) {
  McamNnEngine engine{};
  const Blobs blobs = make_blobs(4, 2, 8, 0.5, 47);
  engine.add(blobs.train, blobs.train_labels);
  EXPECT_TRUE(engine.query({}, 3).empty());
  EXPECT_TRUE(BatchExecutor{}.run(engine, {}, 3).empty());
}

TEST(EngineFactoryRegistry, RoundTripsEveryRegisteredName) {
  // Acceptance: every registered name builds an engine that fits and
  // serves top-k queries.
  const Blobs blobs = make_blobs(8, 3, 8, 0.5, 49);
  EngineConfig config;
  config.num_features = 8;
  for (const std::string& name : EngineFactory::instance().registered_names()) {
    EngineConfig engine_config = config;
    if (name == "refine") engine_config.fine_spec = "euclidean";
    auto index = make_index(name, engine_config);
    ASSERT_NE(index, nullptr) << name;
    EXPECT_FALSE(index->name().empty()) << name;
    index->add(blobs.train, blobs.train_labels);
    EXPECT_EQ(index->size(), blobs.train.size()) << name;
    const QueryResult result = index->query_one(blobs.queries.front(), 3);
    EXPECT_EQ(result.neighbors.size(), 3u) << name;
  }
}

TEST(EngineFactoryRegistry, BuiltinsPresentAndUnknownNameThrows) {
  const EngineFactory& factory = EngineFactory::instance();
  for (const char* name : {"mcam3", "mcam2", "mcam", "tcam-lsh", "cosine", "euclidean"}) {
    EXPECT_TRUE(factory.contains(name)) << name;
  }
  EXPECT_FALSE(factory.contains("flux-capacitor"));
  EXPECT_THROW((void)factory.create("flux-capacitor", EngineConfig{}),
               std::invalid_argument);
}

TEST(EngineFactoryRegistry, McamBitsAndLshBitsAreHonored) {
  EngineConfig config;
  config.num_features = 16;
  config.mcam_bits = 2;
  EXPECT_EQ(make_index("mcam", config)->name(), "2-bit MCAM");
  EXPECT_EQ(make_index("mcam3", config)->name(), "3-bit MCAM");
  EXPECT_EQ(make_index("tcam-lsh", config)->name(), "TCAM+LSH (16b)");
  config.lsh_bits = 128;
  EXPECT_EQ(make_index("tcam-lsh", config)->name(), "TCAM+LSH (128b)");
}

TEST(EngineFactoryRegistry, CustomRegistrationIsCreatable) {
  EngineFactory& factory = EngineFactory::instance();
  factory.register_engine("test-manhattan", [](const EngineConfig&) {
    return std::make_unique<SoftwareNnEngine>("manhattan");
  });
  EXPECT_TRUE(factory.contains("test-manhattan"));
  EXPECT_EQ(factory.create("test-manhattan", EngineConfig{})->name(), "manhattan (FP32)");
}

TEST(NnIndexIncremental, AddAfterCalibrationExtendsTheIndex) {
  const Blobs blobs = make_blobs(10, 2, 8, 0.4, 51);
  McamNnEngine engine{};
  // First batch calibrates the quantizer; the second streams in afterwards.
  const std::span<const std::vector<float>> all{blobs.train};
  const std::span<const int> all_labels{blobs.train_labels};
  engine.add(all.subspan(0, 10), all_labels.subspan(0, 10));
  EXPECT_EQ(engine.size(), 10u);
  const encoding::UniformQuantizer calibrated = engine.quantizer();
  engine.add(all.subspan(10), all_labels.subspan(10));
  EXPECT_EQ(engine.size(), blobs.train.size());
  // The quantizer was not refitted by the second add.
  EXPECT_EQ(engine.quantizer().quantize(blobs.queries.front()),
            calibrated.quantize(blobs.queries.front()));
  // Entries from both batches are retrievable.
  std::set<int> labels_seen;
  for (const auto& q : blobs.queries) labels_seen.insert(engine.query_one(q, 1).label);
  EXPECT_EQ(labels_seen.size(), 2u);
}

TEST(NnIndexIncremental, FailedAddLeavesTheIndexConsistent) {
  // Regression: a batch that throws mid-validation (dimension mismatch
  // after calibration) must not desync labels from programmed rows.
  const Blobs blobs = make_blobs(6, 2, 8, 0.4, 57);
  McamNnEngine mcam{};
  TcamLshEngine tcam{32, 3};
  mcam.add(blobs.train, blobs.train_labels);
  tcam.add(blobs.train, blobs.train_labels);
  SoftwareNnEngine software{"euclidean"};
  software.add(blobs.train, blobs.train_labels);
  const std::vector<std::vector<float>> bad_batch{blobs.train.front(), {1.0f, 2.0f}};
  const std::vector<int> bad_labels{0, 1};
  EXPECT_THROW(mcam.add(bad_batch, bad_labels), std::invalid_argument);
  EXPECT_THROW(tcam.add(bad_batch, bad_labels), std::invalid_argument);
  EXPECT_THROW(software.add(bad_batch, bad_labels), std::invalid_argument);
  EXPECT_EQ(mcam.size(), blobs.train.size());
  EXPECT_EQ(tcam.size(), blobs.train.size());
  // All-or-nothing: the valid first row of the bad batch was not committed.
  EXPECT_EQ(software.size(), blobs.train.size());
  // Full-size top-k still works (would be UB if labels outran the rows).
  EXPECT_EQ(mcam.query_one(blobs.queries.front(), mcam.size()).neighbors.size(),
            blobs.train.size());
  EXPECT_EQ(tcam.query_one(blobs.queries.front(), tcam.size()).neighbors.size(),
            blobs.train.size());
}

TEST(NnIndexBatch, ShardFloorLimitsWorkerCount) {
  BatchOptions options;
  options.num_threads = 8;
  options.min_shard_size = 8;
  const BatchExecutor executor{options};
  EXPECT_EQ(executor.threads_for(0), 0u);
  EXPECT_EQ(executor.threads_for(7), 1u);   // Below the floor: no fan-out.
  EXPECT_EQ(executor.threads_for(9), 1u);   // A second worker would get < 8.
  EXPECT_EQ(executor.threads_for(16), 2u);
  EXPECT_EQ(executor.threads_for(1000), 8u);
}

TEST(NnIndexIncremental, ClearThenAddRecalibrates) {
  const Blobs near_origin = make_blobs(8, 2, 8, 0.3, 53);
  McamNnEngine engine{};
  engine.add(near_origin.train, near_origin.train_labels);
  const auto before = engine.quantizer().quantize(near_origin.queries.front());
  // Refit on shifted data: the quantizer must be refitted, not reused.
  std::vector<std::vector<float>> shifted = near_origin.train;
  for (auto& row : shifted) {
    for (auto& v : row) v += 50.0f;
  }
  engine.clear();
  engine.add(shifted, near_origin.train_labels);
  EXPECT_EQ(engine.size(), shifted.size());
  const auto after = engine.quantizer().quantize(near_origin.queries.front());
  EXPECT_NE(before, after);
}

TEST(NnIndexIncremental, CalibrateWithoutStoringRows) {
  // calibrate() fits the encoders exactly as the first add would, but
  // stores nothing - the deployment path for base-split calibration and
  // the contract the shard layer relies on for cross-bank comparability.
  const Blobs blobs = make_blobs(8, 2, 8, 0.4, 59);
  McamNnEngine calibrated{};
  calibrated.calibrate(blobs.train);
  EXPECT_EQ(calibrated.size(), 0u);
  McamNnEngine reference{};
  reference.add(blobs.train, blobs.train_labels);
  // Same quantizer as the engine that calibrated on its first add.
  EXPECT_EQ(calibrated.quantizer().quantize(blobs.queries.front()),
            reference.quantizer().quantize(blobs.queries.front()));
  // A later add streams in without refitting.
  calibrated.add(blobs.train, blobs.train_labels);
  EXPECT_EQ(calibrated.size(), blobs.train.size());
  EXPECT_EQ(calibrated.query_one(blobs.queries.front(), 3).neighbors.front().index,
            reference.query_one(blobs.queries.front(), 3).neighbors.front().index);
}

TEST(MajorityVote, OutvotesNearestOutlier) {
  // Nearest neighbor is a mislabeled outlier; ranks 2 and 3 agree.
  const std::vector<Neighbor> neighbors{{0, 9, 1.0}, {1, 7, 2.0}, {2, 7, 3.0}};
  EXPECT_EQ(majority_label(neighbors), 7);
}

TEST(MajorityVote, TieBreaksToSmallerScoreSum)  {
  const std::vector<Neighbor> neighbors{{0, 1, 1.0}, {1, 2, 1.5}, {2, 2, 4.0}, {3, 1, 2.0}};
  // Both labels have 2 votes; label 1 sums to 3.0 < label 2's 5.5.
  EXPECT_EQ(majority_label(neighbors), 1);
}

TEST(MajorityVote, SingleNeighborIsItsLabel) {
  EXPECT_EQ(majority_label(std::vector<Neighbor>{{4, 42, 0.5}}), 42);
  EXPECT_THROW((void)majority_label({}), std::invalid_argument);
}

}  // namespace
}  // namespace mcam::search
