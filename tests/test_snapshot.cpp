// Snapshot persistence invariants: for every factory backend (monolithic
// and sharded, both sensing modes, with programming noise enabled),
// load(save(idx)) answers queries bit-identically to the original after a
// randomized add/erase history, later adds behave identically (the replay
// reconstructs the RNG position), and the header layer rejects corrupted,
// truncated, mis-versioned and mis-typed blobs before any engine code
// runs.
#include "serve/snapshot.hpp"

#include "cam/lut.hpp"
#include "experiments/lut_engine.hpp"
#include "mann/memory.hpp"
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "serve/io.hpp"
#include "snapshot_v2_fixtures.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace mcam::serve {
namespace {

using search::EngineConfig;
using search::NnIndex;
using search::QueryResult;

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.4 + (i % 3) * 0.25, 0.7));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 4);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 4)));
  }
  return data;
}

void expect_identical(const QueryResult& restored, const QueryResult& original,
                      const std::string& context) {
  EXPECT_EQ(restored.label, original.label) << context;
  ASSERT_EQ(restored.neighbors.size(), original.neighbors.size()) << context;
  for (std::size_t i = 0; i < original.neighbors.size(); ++i) {
    EXPECT_EQ(restored.neighbors[i].index, original.neighbors[i].index)
        << context << " rank " << i;
    EXPECT_EQ(restored.neighbors[i].label, original.neighbors[i].label)
        << context << " rank " << i;
    EXPECT_EQ(restored.neighbors[i].distance, original.neighbors[i].distance)
        << context << " rank " << i;  // Exact: same conductances / metrics.
  }
  EXPECT_EQ(restored.telemetry.candidates, original.telemetry.candidates) << context;
}

/// Applies a seeded add/erase history, snapshots, restores, and checks
/// query identity plus identical behavior of a post-restore add.
void check_round_trip(const std::string& name, const EngineConfig& config,
                      std::uint64_t history_seed) {
  const Data data = make_data(70, 6, 5, 301 + history_seed);
  const Data extra = make_data(12, 6, 0, 977 + history_seed);
  auto original = search::make_index(name, config);

  // Randomized history: calibrating add, interleaved erases and adds.
  Rng history{history_seed};
  std::size_t added = 0;
  const auto add_some = [&](std::size_t count) {
    const std::size_t take = std::min(count, data.rows.size() - added);
    if (take == 0) return;
    original->add(std::span{data.rows}.subspan(added, take),
                  std::span{data.labels}.subspan(added, take));
    added += take;
  };
  add_some(20 + history.index(20));
  for (int round = 0; round < 3; ++round) {
    for (int e = 0; e < 4; ++e) {
      const std::size_t id = history.index(added);
      try {
        original->erase(id);
      } catch (const std::out_of_range&) {
        // Unreachable: ids < added always exist.
        FAIL() << "erase threw for a live id";
      }
    }
    add_some(5 + history.index(10));
  }

  const std::vector<std::uint8_t> blob = save(*original, name, config);
  auto restored = load(blob);
  ASSERT_NE(restored, nullptr) << name;
  EXPECT_EQ(restored->size(), original->size()) << name;
  EXPECT_EQ(restored->name(), original->name()) << name;

  for (const auto& q : data.queries) {
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, original->size()}) {
      expect_identical(restored->query_one(q, k), original->query_one(q, k),
                       name + " k=" + std::to_string(k));
    }
  }

  // Warm-restart contract: streaming more rows into the restored index
  // behaves exactly like the original (replay reconstructed the per-bank
  // RNG positions, so programming noise continues identically), and so do
  // further erases (the id map round-tripped).
  original->add(extra.rows, extra.labels);
  restored->add(extra.rows, extra.labels);
  const std::size_t late_victim = added / 2;
  EXPECT_EQ(original->erase(late_victim), restored->erase(late_victim)) << name;
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 7), original->query_one(q, 7),
                     name + " post-restore add/erase");
  }
}

TEST(SnapshotRoundTrip, BitIdenticalForEveryFactoryBackendIdealSensing) {
  std::uint64_t seed = 11;
  for (const std::string& name : search::EngineFactory::instance().registered_names()) {
    EngineConfig config;
    config.num_features = 6;
    config.vth_sigma = 0.04;  // Exercise the programming-noise replay.
    // bank_rows bounds the *physical* array for monolithic keys; only the
    // sharded twins tile past it.
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 24 : 0;
    config.shard_workers = 2;
    // The two-stage pipeline rides the same loop: both stages (coarse
    // TCAM planes + the noisy MCAM fine stage) must replay bit-identically.
    if (name == "refine") config.fine_spec = "mcam3";
    check_round_trip(name, config, seed++);
  }
}

TEST(SnapshotRoundTrip, BitIdenticalUnderMatchlineTiming) {
  std::uint64_t seed = 211;
  for (const std::string& name :
       {std::string{"mcam3"}, std::string{"mcam2"}, std::string{"tcam-lsh"},
        std::string{"sharded-mcam3"}, std::string{"sharded-tcam-lsh"}}) {
    EngineConfig config;
    config.num_features = 6;
    config.vth_sigma = 0.04;
    config.sensing = cam::SensingMode::kMatchlineTiming;
    config.sense_clock_period = 1e-10;
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 16 : 0;
    check_round_trip(name, config, seed++);
  }
}

TEST(SnapshotRoundTrip, CalibratedEmptyIndexKeepsItsEncoders) {
  // calibrate-then-snapshot is the deployment path for shipping a fitted
  // but unpopulated index to serving hosts.
  const Data data = make_data(40, 5, 3, 71);
  EngineConfig config;
  config.num_features = 5;
  auto original = search::make_index("mcam3", config);
  original->calibrate(data.rows);
  const std::vector<std::uint8_t> blob = save(*original, "mcam3", config);
  auto restored = load(blob);
  EXPECT_EQ(restored->size(), 0u);
  original->add(data.rows, data.labels);
  restored->add(data.rows, data.labels);
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 3), original->query_one(q, 3),
                     "calibrated-empty");
  }
}

TEST(SnapshotRoundTrip, LutEngineRoundTripsThroughDirectHooks) {
  // McamLutEngine is not a registry builtin (it needs a conductance
  // table), so its hooks are exercised engine-to-engine.
  const Data data = make_data(30, 4, 3, 83);
  const cam::ConductanceLut lut = cam::ConductanceLut::nominal(fefet::LevelMap{2});
  experiments::McamLutEngine original{lut, 2};
  original.add(data.rows, data.labels);
  ASSERT_TRUE(original.erase(3));

  io::Writer out;
  original.save_state(out);
  experiments::McamLutEngine restored{lut, 2};
  io::Reader in{out.buffer()};
  restored.load_state(in);
  in.expect_end();
  EXPECT_EQ(restored.size(), original.size());
  for (const auto& q : data.queries) {
    expect_identical(restored.query_one(q, 5), original.query_one(q, 5), "mcam-lut");
  }
}

TEST(SnapshotRoundTrip, MannFeatureMemoryRestoresWarm) {
  // A programmed episode memory persists through the same hooks: the MANN
  // deployment path for shipping support sets to serving hosts.
  const Data data = make_data(40, 6, 4, 87);
  EngineConfig config;
  config.num_features = 6;
  config.bank_rows = 16;
  mann::FeatureMemory original{search::make_index("sharded-mcam2", config),
                               mann::StoragePolicy::kAllShots};
  original.store(data.rows, data.labels);
  ASSERT_TRUE(original.forget(5));

  io::Writer out;
  original.save_state(out);
  mann::FeatureMemory restored{search::make_index("sharded-mcam2", config),
                               mann::StoragePolicy::kAllShots};
  io::Reader in{out.buffer()};
  restored.load_state(in);
  in.expect_end();
  EXPECT_EQ(restored.size(), original.size());
  for (const auto& q : data.queries) {
    expect_identical(restored.retrieve(q, 5), original.retrieve(q, 5), "mann");
    EXPECT_EQ(restored.lookup(q, 3), original.lookup(q, 3));
  }

  // Policy mismatch is rejected before any index state changes.
  mann::FeatureMemory wrong_policy{search::make_index("sharded-mcam2", config),
                                   mann::StoragePolicy::kPrototype};
  io::Reader again{out.buffer()};
  EXPECT_THROW(wrong_policy.load_state(again), io::SnapshotError);
}

TEST(SnapshotFormat, InspectReportsHeaderAndRecipe) {
  const Data data = make_data(30, 4, 0, 91);
  EngineConfig config;
  config.num_features = 4;
  config.bank_rows = 8;
  auto index = search::make_index("sharded-euclidean", config);
  index->add(data.rows, data.labels);
  // Spec-string names are normalized into the embedded recipe.
  const std::vector<std::uint8_t> blob =
      save(*index, "sharded-euclidean:bank_rows=8", config);
  const SnapshotInfo info = inspect(blob);
  EXPECT_EQ(info.version, kSnapshotVersion);
  EXPECT_EQ(info.engine, "sharded-euclidean");
  EXPECT_EQ(info.config.bank_rows, 8u);
  EXPECT_EQ(info.config.num_features, 4u);
  EXPECT_GT(info.payload_bytes, 0u);
}

TEST(SnapshotFormat, RejectsCorruptionTruncationAndBadVersion) {
  const Data data = make_data(25, 4, 0, 93);
  EngineConfig config;
  config.num_features = 4;
  auto index = search::make_index("mcam2", config);
  index->add(data.rows, data.labels);
  const std::vector<std::uint8_t> blob = save(*index, "mcam2", config);

  {  // Flipped payload byte -> checksum failure.
    std::vector<std::uint8_t> bad = blob;
    bad[bad.size() - 1] ^= 0xFF;
    EXPECT_THROW((void)load(bad), io::SnapshotError);
  }
  {  // Truncation -> length mismatch.
    std::vector<std::uint8_t> bad{blob.begin(), blob.end() - 5};
    EXPECT_THROW((void)load(bad), io::SnapshotError);
  }
  {  // Bad magic.
    std::vector<std::uint8_t> bad = blob;
    bad[0] = 'X';
    EXPECT_THROW((void)load(bad), io::SnapshotError);
  }
  {  // Unknown future version (patch the checksum is not even needed:
     // version is checked before the payload).
    std::vector<std::uint8_t> bad = blob;
    bad[8] = 0x7F;
    EXPECT_THROW((void)load(bad), io::SnapshotError);
  }
  {  // v1 predates the backward-compat floor.
    std::vector<std::uint8_t> bad = blob;
    bad[8] = 0x01;
    EXPECT_THROW((void)load(bad), io::SnapshotError);
  }
  {  // Shorter than the header.
    const std::vector<std::uint8_t> bad{blob.begin(), blob.begin() + 10};
    EXPECT_THROW((void)inspect(bad), io::SnapshotError);
  }
}

TEST(SnapshotFormat, EnginePayloadTagMismatchIsDetected) {
  const Data data = make_data(20, 4, 0, 95);
  search::SoftwareNnEngine software{"euclidean"};
  software.add(data.rows, data.labels);
  io::Writer out;
  software.save_state(out);

  EngineConfig config;
  config.num_features = 4;
  auto mcam = search::make_index("mcam3", config);
  io::Reader in{out.buffer()};
  EXPECT_THROW(mcam->load_state(in), io::SnapshotError);
}

TEST(SnapshotFormat, FileRoundTripRestoresWarm) {
  const Data data = make_data(50, 5, 4, 97);
  EngineConfig config;
  config.num_features = 5;
  config.bank_rows = 16;
  auto index = search::make_index("sharded-mcam3", config);
  index->add(data.rows, data.labels);
  ASSERT_TRUE(index->erase(7));

  const std::string path = ::testing::TempDir() + "mcam_snapshot_test.bin";
  save_file(*index, "sharded-mcam3", config, path);
  auto restored = load_file(path);
  std::remove(path.c_str());
  EXPECT_EQ(restored->size(), index->size());
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 5), index->query_one(q, 5), "file");
  }
}

/// Builds the post-v3 twin of a captured v2 fixture blob: the same spec,
/// data, and erase history, executed by current code.
std::unique_ptr<NnIndex> build_fixture_twin(const std::string& spec,
                                            const v2fixture::FixtureData& data) {
  EngineConfig config;
  config.num_features = 6;
  auto twin = search::make_index(spec, config);
  twin->add(data.rows, data.labels);
  for (std::size_t id : v2fixture::v2_fixture_erased()) {
    if (!twin->erase(id)) throw std::logic_error{"fixture erase diverged"};
  }
  return twin;
}

TEST(SnapshotCompat, CapturedV2RefineBlobLoadsAsRandomSingleProbe) {
  // Backward compatibility against genuine v2 bytes (captured at snapshot
  // version 2, before the signature-model subsystem): the blob loads, the
  // missing config fields default to the pre-v3 behavior, and the
  // restored pipeline answers bit-identically to the same history
  // replayed by current code (the `random` model is bit-compatible with
  // the legacy TCAM-LSH coarse stage).
  const std::span<const unsigned char> bytes{v2fixture::kRefineBlob};
  const SnapshotInfo info = inspect(bytes);
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.engine, "refine");
  EXPECT_EQ(info.config.coarse_bits, 24u);
  EXPECT_EQ(info.config.candidate_factor, 3u);
  EXPECT_EQ(info.config.fine_spec, "sharded-mcam3:bank_rows=16");
  EXPECT_TRUE(info.config.sig_model.empty());  // v2 default -> "random".
  EXPECT_EQ(info.config.probes, 0u);           // v2 default -> 1 probe.

  auto restored = load(bytes);
  ASSERT_NE(restored, nullptr);
  const v2fixture::FixtureData data = v2fixture::v2_fixture_data();
  auto twin = build_fixture_twin(
      "refine:coarse_bits=24,candidate_factor=3,fine=sharded-mcam3:bank_rows=16", data);
  EXPECT_EQ(restored->size(), twin->size());
  for (const auto& q : data.queries) {
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, twin->size()}) {
      expect_identical(restored->query_one(q, k), twin->query_one(q, k),
                       "v2 refine blob k=" + std::to_string(k));
    }
  }
  // The restored index keeps mutating correctly (both stages in sync).
  ASSERT_TRUE(restored->erase(10));
  ASSERT_TRUE(twin->erase(10));
  expect_identical(restored->query_one(data.queries[0], 4),
                   twin->query_one(data.queries[0], 4), "v2 refine post-load erase");
  // And re-saving writes the current version, which round-trips again.
  EngineConfig config;
  config.num_features = 6;
  const std::vector<std::uint8_t> resaved =
      save(*restored, "refine:coarse_bits=24,candidate_factor=3,fine=sharded-mcam3:bank_rows=16",
           config);
  EXPECT_EQ(inspect(resaved).version, kSnapshotVersion);
  auto reloaded = load(resaved);
  expect_identical(reloaded->query_one(data.queries[1], 3),
                   restored->query_one(data.queries[1], 3), "v2 -> v3 re-save");
}

TEST(SnapshotCompat, CapturedV2ShardedBlobStillLoads) {
  // Non-refine v2 blobs ride the same compat path: only the header and
  // the embedded config layout changed, not the engine payloads.
  const std::span<const unsigned char> bytes{v2fixture::kShardedBlob};
  const SnapshotInfo info = inspect(bytes);
  EXPECT_EQ(info.version, 2u);
  EXPECT_EQ(info.engine, "sharded-mcam3");
  EXPECT_EQ(info.config.bank_rows, 16u);

  auto restored = load(bytes);
  ASSERT_NE(restored, nullptr);
  const v2fixture::FixtureData data = v2fixture::v2_fixture_data();
  auto twin = build_fixture_twin("sharded-mcam3:bank_rows=16", data);
  EXPECT_EQ(restored->size(), twin->size());
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 5), twin->query_one(q, 5),
                     "v2 sharded blob");
  }
}

TEST(SnapshotCompat, HandAssembledV3BlobLoadsBitIdentically) {
  // v4 appended tag_bits / filter_policy to the embedded config and an
  // optional store block; a v3 blob has neither. Assemble genuine v3
  // bytes around a current engine payload (band-less engine payloads are
  // unchanged since v3) and prove the compat path restores them exactly.
  const Data data = make_data(40, 6, 4, 401);
  const std::string spec =
      "refine:coarse_bits=24,candidate_factor=4,sig=trained,probes=2,"
      "fine=euclidean";
  EngineConfig base;
  base.num_features = 6;
  const search::EngineSpec parsed = search::parse_engine_spec(spec, base);
  auto original = search::make_index(spec, base);
  original->add(data.rows, data.labels);
  ASSERT_TRUE(original->erase(11));

  io::Writer payload;
  payload.str(parsed.name);
  // The v3 config layout: v4's prefix, ending at `probes` - no tag_bits,
  // no filter_policy, and no store-present byte before the engine bytes.
  const EngineConfig& c = parsed.config;
  payload.u64(c.num_features);
  payload.u32(c.mcam_bits);
  payload.u64(c.lsh_bits);
  payload.f64(c.vth_sigma);
  payload.u8(static_cast<std::uint8_t>(c.sensing));
  payload.f64(c.sense_clock_period);
  payload.f64(c.clip_percentile);
  payload.u64(c.seed);
  payload.u64(c.bank_rows);
  payload.u64(c.shard_workers);
  payload.u64(c.coarse_bits);
  payload.u64(c.candidate_factor);
  payload.u8(c.refine_exhaustive ? 1 : 0);
  payload.str(c.fine_spec);
  payload.str(c.sig_model);
  payload.u64(c.probes);
  original->save_state(payload);

  io::Writer blob;
  const std::array<std::uint8_t, 8> magic = {'M', 'C', 'A', 'M', 'S', 'N', 'A', 'P'};
  blob.raw(magic);
  blob.u32(3);
  blob.u32(io::crc32(payload.buffer()));
  blob.u64(payload.size());
  blob.raw(payload.buffer());

  const SnapshotInfo info = inspect(blob.buffer());
  EXPECT_EQ(info.version, 3u);
  EXPECT_EQ(info.engine, "refine");
  EXPECT_EQ(info.config.sig_model, "trained");
  EXPECT_EQ(info.config.probes, 2u);
  EXPECT_EQ(info.config.fine_spec, "euclidean");
  EXPECT_EQ(info.config.tag_bits, 0u);        // v3 default: no band.
  EXPECT_TRUE(info.config.filter_policy.empty());
  EXPECT_FALSE(info.has_store);

  auto restored = load(blob.buffer());
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->size(), original->size());
  for (const auto& q : data.queries) {
    for (std::size_t k : {std::size_t{1}, std::size_t{5}, original->size()}) {
      expect_identical(restored->query_one(q, k), original->query_one(q, k),
                       "v3 blob k=" + std::to_string(k));
    }
  }
  // Re-saving writes the current version with the appended fields.
  const std::vector<std::uint8_t> resaved = save(*restored, spec, base);
  EXPECT_EQ(inspect(resaved).version, kSnapshotVersion);
  expect_identical(load(resaved)->query_one(data.queries[0], 5),
                   original->query_one(data.queries[0], 5), "v3 -> v4 re-save");
}

TEST(SnapshotIo, PrimitivesRoundTripAndBoundsCheck) {
  io::Writer out;
  out.u8(7);
  out.u16(65535);
  out.u32(0xDEADBEEFu);
  out.u64(0x0123456789ABCDEFull);
  out.i32(-42);
  out.f32(3.25f);
  out.f64(-1.0 / 3.0);
  out.str("hello");
  out.vec_f32(std::vector<float>{1.5f, -2.5f});
  io::Reader in{out.buffer()};
  EXPECT_EQ(in.u8(), 7);
  EXPECT_EQ(in.u16(), 65535);
  EXPECT_EQ(in.u32(), 0xDEADBEEFu);
  EXPECT_EQ(in.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(in.i32(), -42);
  EXPECT_EQ(in.f32(), 3.25f);
  EXPECT_EQ(in.f64(), -1.0 / 3.0);
  EXPECT_EQ(in.str(), "hello");
  EXPECT_EQ(in.vec_f32(), (std::vector<float>{1.5f, -2.5f}));
  in.expect_end();
  EXPECT_THROW((void)in.u8(), io::SnapshotError);

  // A absurd length prefix must throw, not allocate.
  io::Writer evil;
  evil.u64(~std::uint64_t{0});
  io::Reader evil_in{evil.buffer()};
  EXPECT_THROW((void)evil_in.vec_f32(), io::SnapshotError);

  // CRC-32 known-answer ("123456789" -> 0xCBF43926).
  const std::string check = "123456789";
  EXPECT_EQ(io::crc32(std::span{reinterpret_cast<const std::uint8_t*>(check.data()),
                                check.size()}),
            0xCBF43926u);
}

}  // namespace
}  // namespace mcam::serve
