// Property-based sweeps (TEST_P) over bit widths, word lengths and
// workloads: invariants that must hold for every configuration, not just
// the paper's 2/3-bit design points.
#include "cam/array.hpp"
#include "cam/lut.hpp"
#include "distance/mcam_distance.hpp"
#include "encoding/quantizer.hpp"
#include "search/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

namespace mcam {
namespace {

// ---------------------------------------------------------------------------
// LUT invariants across bit widths.
class LutProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(LutProperties, DiagonalDominatedByEveryOffDiagonal) {
  const fefet::LevelMap map{GetParam()};
  const auto lut = cam::ConductanceLut::nominal(map);
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    for (std::size_t i = 0; i < map.num_states(); ++i) {
      if (i == s) continue;
      EXPECT_GT(lut.g(i, s), lut.g(s, s)) << "bits " << GetParam();
    }
  }
}

TEST_P(LutProperties, MonotoneAlongEveryRowAndColumn) {
  const fefet::LevelMap map{GetParam()};
  const auto lut = cam::ConductanceLut::nominal(map);
  const std::size_t n = map.num_states();
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t i = s + 2; i < n; ++i) {
      EXPECT_GT(lut.g(i, s), lut.g(i - 1, s));
      EXPECT_GT(lut.g(s, i), lut.g(s, i - 1));
    }
  }
}

TEST_P(LutProperties, MatchConductanceUniformAcrossStates) {
  // Every stored state's self-match is leakage-level and within 2x of the
  // others (no state is privileged).
  const fefet::LevelMap map{GetParam()};
  const auto lut = cam::ConductanceLut::nominal(map);
  double lo = 1e9;
  double hi = 0.0;
  for (std::size_t s = 0; s < map.num_states(); ++s) {
    lo = std::min(lo, lut.g(s, s));
    hi = std::max(hi, lut.g(s, s));
  }
  EXPECT_LT(hi / lo, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Widths, LutProperties, ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// LUT-metric vs physical-array equivalence across (bits, word length).
class ArrayLutEquivalence
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>> {};

TEST_P(ArrayLutEquivalence, SameNearestNeighborOnRandomWorkloads) {
  const auto [bits, word] = GetParam();
  const fefet::LevelMap map{bits};
  cam::McamArrayConfig config;
  config.level_map = map;
  cam::McamArray array{config};
  const distance::McamDistance metric{cam::ConductanceLut::nominal(map)};

  Rng rng{bits * 100 + word};
  std::vector<std::vector<std::uint16_t>> rows(10, std::vector<std::uint16_t>(word));
  for (auto& row : rows) {
    for (auto& level : row) level = static_cast<std::uint16_t>(rng.index(map.num_states()));
  }
  array.program(rows);
  for (int q = 0; q < 25; ++q) {
    std::vector<std::uint16_t> query(word);
    for (auto& level : query) {
      level = static_cast<std::uint16_t>(rng.index(map.num_states()));
    }
    std::size_t best = 0;
    for (std::size_t r = 1; r < rows.size(); ++r) {
      if (metric(query, rows[r]) < metric(query, rows[best])) best = r;
    }
    EXPECT_EQ(array.nearest(query).row, best);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ArrayLutEquivalence,
                         ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u),
                                            ::testing::Values(std::size_t{4},
                                                              std::size_t{16},
                                                              std::size_t{64})));

// ---------------------------------------------------------------------------
// Quantizer invariants across bit widths.
class QuantizerProperties : public ::testing::TestWithParam<unsigned> {};

TEST_P(QuantizerProperties, MonotoneInInput) {
  const unsigned bits = GetParam();
  Rng rng{bits};
  std::vector<std::vector<float>> rows(128, std::vector<float>(1));
  for (auto& row : rows) row[0] = static_cast<float>(rng.uniform(-5.0, 5.0));
  const auto q = encoding::UniformQuantizer::fit(rows, bits);
  std::uint16_t previous = 0;
  for (double x = -6.0; x <= 6.0; x += 0.05) {
    const auto level = q.quantize(std::vector<float>{static_cast<float>(x)})[0];
    EXPECT_GE(level, previous);
    previous = level;
  }
  EXPECT_EQ(previous, q.num_levels() - 1);  // Top level reached.
}

TEST_P(QuantizerProperties, DequantizeQuantizeIsIdempotent) {
  const unsigned bits = GetParam();
  Rng rng{bits + 50};
  std::vector<std::vector<float>> rows(200, std::vector<float>(3));
  for (auto& row : rows) {
    for (auto& v : row) v = static_cast<float>(rng.normal());
  }
  const auto q = encoding::UniformQuantizer::fit(rows, bits);
  for (int i = 0; i < 30; ++i) {
    const auto levels = q.quantize(rows[static_cast<std::size_t>(i)]);
    const auto centers = q.dequantize(levels);
    EXPECT_EQ(q.quantize(centers), levels);  // Level centers map to themselves.
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, QuantizerProperties,
                         ::testing::Values(1u, 2u, 3u, 4u, 6u, 8u));

// ---------------------------------------------------------------------------
// Engine-level invariant: quantization refinement never hurts on clean,
// well-separated data (accuracy monotone-ish in bits).
class EngineBitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineBitSweep, SeparableBlobsStaySeparated) {
  const unsigned bits = GetParam();
  Rng rng{bits * 7 + 1};
  std::vector<std::vector<float>> train;
  std::vector<int> labels;
  std::vector<std::vector<float>> test;
  std::vector<int> test_labels;
  for (int cls = 0; cls < 4; ++cls) {
    for (int i = 0; i < 15; ++i) {
      const auto sample = [&rng, cls]() {
        std::vector<float> v(6);
        for (std::size_t f = 0; f < 6; ++f) {
          v[f] = static_cast<float>(rng.normal(cls * 3.0 + (f % 2) * 0.5, 0.25));
        }
        return v;
      };
      train.push_back(sample());
      labels.push_back(cls);
      test.push_back(sample());
      test_labels.push_back(cls);
    }
  }
  cam::McamArrayConfig config;
  config.level_map = fefet::LevelMap{bits};
  search::McamNnEngine engine{config};
  engine.add(train, labels);
  // Even 2 bits separate blobs 12 sigma apart; >= 2 bits must be perfect.
  // 1 bit can only tell 2 of the 4 magnitude-ordered classes apart, so its
  // ceiling is 50% - still double the 25% chance level.
  const double accuracy = engine.accuracy(test, test_labels);
  if (bits >= 2) {
    EXPECT_DOUBLE_EQ(accuracy, 1.0) << "bits " << bits;
  } else {
    EXPECT_GE(accuracy, 0.45);
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, EngineBitSweep, ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace mcam
