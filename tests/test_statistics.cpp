#include "util/statistics.hpp"

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace mcam {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats stats;
  stats.add(4.2);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 4.2);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 4.2);
  EXPECT_DOUBLE_EQ(stats.max(), 4.2);
}

TEST(RunningStats, MatchesDirectComputation) {
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  RunningStats stats;
  for (double x : xs) stats.add(x);
  EXPECT_NEAR(stats.mean(), 6.2, 1e-12);
  // Unbiased variance: sum((x-6.2)^2)/4 = (27.04+17.64+4.84+3.24+96.04)/4.
  EXPECT_NEAR(stats.variance(), 148.8 / 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 16.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  Rng rng{7};
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Statistics, MeanAndStddev) {
  const std::vector<double> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(mean(xs), 4.0);
  EXPECT_NEAR(stddev(xs), 2.0, 1e-12);
}

TEST(Statistics, MeanOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({}), 0.0);
}

TEST(Statistics, PercentileEndpoints) {
  std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Statistics, PercentileInterpolates) {
  std::vector<double> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Statistics, PercentileThrowsOnEmpty) {
  EXPECT_THROW((void)percentile({}, 50.0), std::invalid_argument);
}

TEST(Statistics, ProportionCi) {
  // p=0.5, n=100 -> 1.96 * 0.05 = 0.098.
  EXPECT_NEAR(proportion_ci95(0.5, 100), 0.098, 1e-9);
  EXPECT_DOUBLE_EQ(proportion_ci95(0.5, 0), 0.0);
}

TEST(Histogram, OutOfRangeSamplesCountSeparatelyNotInEdgeBins) {
  // Regression: out-of-range samples used to be clamped into the first /
  // last bin, silently inflating the tails of the Fig. 5 / Fig. 8
  // variation sweeps; they are tallied as underflow / overflow instead.
  Histogram h{0.0, 10.0, 10};
  h.add(0.5);    // bin 0
  h.add(9.5);    // bin 9
  h.add(-5.0);   // underflow, NOT bin 0
  h.add(15.0);   // overflow, NOT bin 9
  h.add(10.0);   // hi is exclusive: overflow too
  h.add(0.0);    // lo is inclusive: bin 0
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);  // total() still counts every sample added.
}

TEST(Histogram, AsciiReportsOutOfRangeCounts) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.5);
  EXPECT_EQ(h.to_ascii().find("out-of-range"), std::string::npos);
  h.add(-1.0);
  h.add(2.0);
  h.add(3.0);
  const std::string art = h.to_ascii();
  EXPECT_NE(art.find("out-of-range: 1 underflow"), std::string::npos) << art;
  EXPECT_NE(art.find("2 overflow"), std::string::npos) << art;
}

TEST(Histogram, BinCenters) {
  Histogram h{0.0, 1.0, 4};
  EXPECT_NEAR(h.bin_center(0), 0.125, 1e-12);
  EXPECT_NEAR(h.bin_center(3), 0.875, 1e-12);
}

TEST(Histogram, GaussianShape) {
  Histogram h{-4.0, 4.0, 8};
  Rng rng{3};
  for (int i = 0; i < 20000; ++i) h.add(rng.normal());
  // Central bins dominate the tails.
  EXPECT_GT(h.count(3) + h.count(4), 10 * (h.count(0) + h.count(7)));
}

TEST(Histogram, AsciiRenderIncludesCounts) {
  Histogram h{0.0, 1.0, 2};
  h.add(0.2);
  h.add(0.7);
  h.add(0.8);
  const std::string art = h.to_ascii(10);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find('2'), std::string::npos);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW((Histogram{0.0, 1.0, 0}), std::invalid_argument);
  EXPECT_THROW((Histogram{1.0, 0.0, 4}), std::invalid_argument);
}

TEST(LinearFit, RecoversLine) {
  std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
  std::vector<double> ys{1.0, 3.0, 5.0, 7.0};
  const LinearFit fit = linear_fit(xs, ys);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
}

TEST(LinearFit, ThrowsOnDegenerateInput) {
  EXPECT_THROW((void)linear_fit(std::vector<double>{1.0}, std::vector<double>{2.0}),
               std::invalid_argument);
}

TEST(Pearson, PerfectCorrelation) {
  std::vector<double> xs{1.0, 2.0, 3.0};
  std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_NEAR(pearson(xs, ys), 1.0, 1e-12);
  std::vector<double> neg{-2.0, -4.0, -6.0};
  EXPECT_NEAR(pearson(xs, neg), -1.0, 1e-12);
}

TEST(Pearson, DegenerateReturnsZero) {
  std::vector<double> xs{1.0, 1.0, 1.0};
  std::vector<double> ys{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(pearson(xs, ys), 0.0);
}

}  // namespace
}  // namespace mcam
