#include "ml/embedding.hpp"
#include "ml/layers.hpp"
#include "ml/loss.hpp"
#include "ml/network.hpp"
#include "ml/optimizer.hpp"
#include "ml/tensor.hpp"
#include "ml/trainer.hpp"

#include "util/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::ml {
namespace {

/// Central-difference gradient check of a layer's input gradient.
void grad_check_layer(Layer& layer, std::vector<float> x, double tol = 2e-2) {
  const std::vector<float> y = layer.forward(x);
  // Loss = sum(y^2)/2 so dL/dy = y.
  const std::vector<float> grad_in = layer.backward(y);
  constexpr float kEps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); i += std::max<std::size_t>(1, x.size() / 16)) {
    auto plus = x;
    plus[i] += kEps;
    auto minus = x;
    minus[i] -= kEps;
    const std::vector<float> yp = layer.forward(plus);
    const std::vector<float> ym = layer.forward(minus);
    double lp = 0.0;
    double lm = 0.0;
    for (float v : yp) lp += 0.5 * v * v;
    for (float v : ym) lm += 0.5 * v * v;
    const double numeric = (lp - lm) / (2.0 * kEps);
    EXPECT_NEAR(grad_in[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input index " << i;
  }
}

TEST(Tensor, ShapeAndAccess) {
  Tensor t{{2, 3}};
  EXPECT_EQ(t.size(), 6u);
  t.at(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(t.at(1, 2), 5.0f);
  EXPECT_FLOAT_EQ(t[5], 5.0f);
}

TEST(Tensor, RandnStatistics) {
  Rng rng{3};
  const Tensor t = Tensor::randn({1000}, rng, 0.5);
  double sum = 0.0;
  for (std::size_t i = 0; i < t.size(); ++i) sum += t[i];
  EXPECT_NEAR(sum / 1000.0, 0.0, 0.06);
}

TEST(Tensor, Rank2AccessOnVectorThrows) {
  Tensor t{{4}};
  EXPECT_THROW((void)t.at(0, 0), std::logic_error);
}

TEST(Dense, ForwardIsAffine) {
  Rng rng{1};
  Dense dense{2, 1, rng};
  const auto params = dense.parameters();
  params[0].value->storage() = {2.0f, 3.0f};  // W.
  params[1].value->storage() = {1.0f};        // b.
  const std::vector<float> y = dense.forward({10.0f, 100.0f});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 2.0f * 10.0f + 3.0f * 100.0f + 1.0f);
}

TEST(Dense, GradCheck) {
  Rng rng{2};
  Dense dense{6, 4, rng};
  std::vector<float> x(6);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  grad_check_layer(dense, x);
}

TEST(Dense, WeightGradientAccumulates) {
  Rng rng{3};
  Dense dense{2, 1, rng};
  (void)dense.forward({1.0f, 2.0f});
  (void)dense.backward({1.0f});
  (void)dense.forward({1.0f, 2.0f});
  (void)dense.backward({1.0f});
  const auto params = dense.parameters();
  EXPECT_FLOAT_EQ(params[0].grad->storage()[0], 2.0f);  // dW = 2 * x0 * g.
  EXPECT_FLOAT_EQ(params[1].grad->storage()[0], 2.0f);
}

TEST(Relu, ForwardBackward) {
  Relu relu;
  const std::vector<float> y = relu.forward({-1.0f, 2.0f, -3.0f, 4.0f});
  EXPECT_EQ(y, (std::vector<float>{0.0f, 2.0f, 0.0f, 4.0f}));
  const std::vector<float> g = relu.backward({1.0f, 1.0f, 1.0f, 1.0f});
  EXPECT_EQ(g, (std::vector<float>{0.0f, 1.0f, 0.0f, 1.0f}));
}

TEST(Conv2d, GradCheck) {
  Rng rng{5};
  Conv2d conv{1, 2, 6, 6, rng};
  std::vector<float> x(36);
  for (auto& v : x) v = static_cast<float>(rng.normal());
  grad_check_layer(conv, x);
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Rng rng{7};
  Conv2d conv{1, 1, 4, 4, rng};
  auto params = conv.parameters();
  auto& w = params[0].value->storage();
  std::fill(w.begin(), w.end(), 0.0f);
  w[4] = 1.0f;  // Center tap of the single 3x3 kernel.
  params[1].value->storage()[0] = 0.0f;
  std::vector<float> x(16);
  for (std::size_t i = 0; i < 16; ++i) x[i] = static_cast<float>(i);
  EXPECT_EQ(conv.forward(x), x);
}

TEST(MaxPool2d, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d pool{1, 4, 4};
  std::vector<float> x(16, 0.0f);
  x[5] = 3.0f;   // Window (row 0-1, col 0-1) of the second 2x2 block... index 5 = (1,1).
  x[10] = 7.0f;  // (2,2).
  const std::vector<float> y = pool.forward(x);
  ASSERT_EQ(y.size(), 4u);
  EXPECT_FLOAT_EQ(y[0], 3.0f);
  EXPECT_FLOAT_EQ(y[3], 7.0f);
  const std::vector<float> g = pool.backward({1.0f, 0.0f, 0.0f, 2.0f});
  EXPECT_FLOAT_EQ(g[5], 1.0f);
  EXPECT_FLOAT_EQ(g[10], 2.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool2d, OddSizeThrows) {
  EXPECT_THROW((MaxPool2d{1, 5, 4}), std::invalid_argument);
}

TEST(Softmax, SumsToOneAndStable) {
  const std::vector<float> probs = softmax(std::vector<float>{1000.0f, 1001.0f, 999.0f});
  double sum = 0.0;
  for (float p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(SoftmaxCrossEntropy, GradientIsSoftmaxMinusOneHot) {
  const LossResult result = softmax_cross_entropy(std::vector<float>{1.0f, 2.0f, 3.0f}, 2);
  const std::vector<float> probs = softmax(std::vector<float>{1.0f, 2.0f, 3.0f});
  EXPECT_NEAR(result.grad[0], probs[0], 1e-6);
  EXPECT_NEAR(result.grad[2], probs[2] - 1.0f, 1e-6);
  EXPECT_NEAR(result.loss, -std::log(probs[2]), 1e-6);
}

TEST(SoftmaxCrossEntropy, TargetOutOfRangeThrows) {
  EXPECT_THROW((void)softmax_cross_entropy(std::vector<float>{1.0f}, 1),
               std::invalid_argument);
}

TEST(Sequential, ForwardToCutsAtLayer) {
  Rng rng{9};
  Sequential net = make_mlp_classifier(10, 3, rng);
  std::vector<float> x(10, 0.5f);
  const std::vector<float> embedding = net.forward_to(x, kDefaultEmbeddingCut);
  EXPECT_EQ(embedding.size(), 64u);
  const std::vector<float> logits = net.forward(x);
  EXPECT_EQ(logits.size(), 3u);
}

TEST(Sequential, SummaryAndParameterCount) {
  Rng rng{11};
  Sequential net = make_mlp_classifier(400, 20, rng);
  EXPECT_NE(net.summary().find("dense(400->128)"), std::string::npos);
  // 400*128+128 + 128*64+64 + 64*20+20.
  EXPECT_EQ(net.num_parameters(), 400u * 128 + 128 + 128 * 64 + 64 + 64 * 20 + 20);
}

TEST(Sgd, ConvergesOnQuadratic) {
  // Minimize ||W x - t||^2 for a fixed x via the Dense layer.
  Rng rng{13};
  Dense dense{1, 1, rng};
  Sgd sgd{dense.parameters(), 0.05, 0.0};
  for (int step = 0; step < 200; ++step) {
    const std::vector<float> y = dense.forward({1.0f});
    (void)dense.backward({y[0] - 3.0f});
    sgd.step();
  }
  EXPECT_NEAR(dense.forward({1.0f})[0], 3.0f, 1e-3);
}

TEST(Adam, ConvergesOnQuadratic) {
  Rng rng{15};
  Dense dense{1, 1, rng};
  Adam adam{dense.parameters(), 0.05};
  for (int step = 0; step < 400; ++step) {
    const std::vector<float> y = dense.forward({1.0f});
    (void)dense.backward({y[0] - 3.0f});
    adam.step();
  }
  EXPECT_NEAR(dense.forward({1.0f})[0], 3.0f, 1e-2);
}

TEST(Optimizer, ZeroGradClears) {
  Rng rng{17};
  Dense dense{2, 2, rng};
  (void)dense.forward({1.0f, 1.0f});
  (void)dense.backward({1.0f, 1.0f});
  Sgd sgd{dense.parameters(), 0.1};
  sgd.zero_grad();
  for (const ParamRef& p : dense.parameters()) {
    for (std::size_t i = 0; i < p.grad->size(); ++i) {
      EXPECT_FLOAT_EQ((*p.grad)[i], 0.0f);
    }
  }
}

TEST(Trainer, LearnsSeparableBlobs) {
  Rng rng{19};
  Sequential net = make_mlp_classifier(4, 3, rng);
  const SampleSource source = [](Rng& r) {
    TrainingSample sample;
    sample.label = r.index(3);
    sample.input.resize(4);
    for (std::size_t i = 0; i < 4; ++i) {
      sample.input[i] =
          static_cast<float>(r.normal(static_cast<double>(sample.label) * 2.0, 0.3));
    }
    return sample;
  };
  TrainerConfig config;
  config.steps = 1500;
  Rng train_rng{21};
  const TrainStats stats = train_classifier(net, source, config, train_rng);
  EXPECT_GT(stats.final_accuracy_ema, 0.9);
  EXPECT_LT(stats.final_loss_ema, 0.4);
  EXPECT_EQ(stats.steps, 1500u);
}

TEST(Trainer, NullSourceThrows) {
  Rng rng{23};
  Sequential net = make_mlp_classifier(4, 2, rng);
  Rng train_rng{1};
  EXPECT_THROW((void)train_classifier(net, SampleSource{}, TrainerConfig{}, train_rng),
               std::invalid_argument);
}

TEST(TrainedEmbedding, CutAndTransforms) {
  Rng rng{25};
  Sequential net = make_mlp_classifier(8, 2, rng);
  TrainedEmbedding embedding{net, kDefaultEmbeddingCut, 64};
  std::vector<float> x(8, 1.0f);
  const std::vector<float> raw = embedding.embed(x);
  EXPECT_EQ(raw.size(), 64u);
  // L2 normalization.
  embedding.set_l2_normalize(true);
  const std::vector<float> normalized = embedding.embed(x);
  EXPECT_NEAR(norm2(normalized), 1.0f, 1e-5f);
  // Centering changes the output.
  embedding.set_centering(std::vector<float>(64, 0.1f));
  const std::vector<float> centered = embedding.embed(x);
  EXPECT_NE(centered, normalized);
}

TEST(TrainedEmbedding, Validation) {
  Rng rng{27};
  Sequential net = make_mlp_classifier(8, 2, rng);
  EXPECT_THROW((TrainedEmbedding{net, 0, 64}), std::invalid_argument);
  EXPECT_THROW((TrainedEmbedding{net, 99, 64}), std::invalid_argument);
  TrainedEmbedding embedding{net, kDefaultEmbeddingCut, 64};
  EXPECT_THROW(embedding.set_centering(std::vector<float>(3, 0.0f)), std::invalid_argument);
}

TEST(GaussianPrototypeEmbedding, SameClassCloserThanCrossClass) {
  const GaussianPrototypeEmbedding features{20, 64, 0.8, 31};
  Rng rng{33};
  double within = 0.0;
  double across = 0.0;
  for (int pair = 0; pair < 50; ++pair) {
    const std::size_t cls_a = rng.index(20);
    std::size_t cls_b = rng.index(20);
    while (cls_b == cls_a) cls_b = rng.index(20);
    const auto a1 = features.sample(cls_a, rng);
    const auto a2 = features.sample(cls_a, rng);
    const auto b = features.sample(cls_b, rng);
    within += squared_distance(a1, a2);
    across += squared_distance(a1, b);
  }
  EXPECT_LT(within, 0.7 * across);
}

TEST(GaussianPrototypeEmbedding, FeaturesAreNonNegative) {
  const GaussianPrototypeEmbedding features{5, 32, 0.5, 35};
  Rng rng{37};
  for (int i = 0; i < 20; ++i) {
    for (float v : features.sample(rng.index(5), rng)) EXPECT_GE(v, 0.0f);
  }
}

TEST(GaussianPrototypeEmbedding, SpikesIncreaseSpread) {
  const GaussianPrototypeEmbedding clean{10, 64, 0.3, 39, 0.0, 2.0};
  const GaussianPrototypeEmbedding spiky{10, 64, 0.3, 39, 0.2, 2.0};
  Rng rng_a{41};
  Rng rng_b{41};
  double clean_spread = 0.0;
  double spiky_spread = 0.0;
  for (int i = 0; i < 40; ++i) {
    const auto c1 = clean.sample(3, rng_a);
    const auto c2 = clean.sample(3, rng_a);
    const auto s1 = spiky.sample(3, rng_b);
    const auto s2 = spiky.sample(3, rng_b);
    clean_spread += squared_distance(c1, c2);
    spiky_spread += squared_distance(s1, s2);
  }
  EXPECT_GT(spiky_spread, 1.5 * clean_spread);
}

TEST(ConvClassifier, ForwardShapes) {
  Rng rng{43};
  Sequential net = make_conv_classifier(20, 5, rng);
  std::vector<float> image(400, 0.5f);
  const std::vector<float> embedding = net.forward_to(image, conv_embedding_cut());
  EXPECT_EQ(embedding.size(), 64u);
  const std::vector<float> logits = net.forward(image);
  EXPECT_EQ(logits.size(), 5u);
}

TEST(PaperController, ForwardShapes) {
  // The paper's exact MANN controller; forward only (training it is out of
  // bench budget, see network.hpp).
  Rng rng{45};
  Sequential net = make_paper_controller(20, 5, rng);
  std::vector<float> image(400, 0.5f);
  const std::vector<float> embedding = net.forward_to(image, paper_controller_embedding_cut());
  EXPECT_EQ(embedding.size(), 64u);
}

}  // namespace
}  // namespace mcam::ml
