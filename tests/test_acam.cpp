#include "cam/acam.hpp"

#include "cam/cell.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace mcam::cam {
namespace {

constexpr double kMatchLimit = 10e-9;

TEST(AcamCell, MatchesInsideRangeOnly) {
  const AcamCell cell{AnalogRange{0.5, 0.8}, 0.84};
  EXPECT_TRUE(cell.matches(0.65, kMatchLimit));
  EXPECT_TRUE(cell.matches(0.55, kMatchLimit));
  EXPECT_FALSE(cell.matches(0.95, kMatchLimit));
  EXPECT_FALSE(cell.matches(0.30, kMatchLimit));
}

TEST(AcamCell, ConductanceGrowsWithExcursion) {
  const AcamCell cell{AnalogRange{0.5, 0.8}, 0.84};
  EXPECT_GT(cell.conductance_at(1.1), cell.conductance_at(0.95));
  EXPECT_GT(cell.conductance_at(0.2), cell.conductance_at(0.4));
}

TEST(AcamCell, InvalidRangeThrows) {
  EXPECT_THROW((AcamCell{AnalogRange{0.8, 0.5}, 0.84}), std::invalid_argument);
}

TEST(AcamCell, McamStateRangeEquivalence) {
  // Sec. II-A: an MCAM cell is an ACAM cell storing the narrow state
  // window. Conductances must agree for every discrete input.
  const fefet::LevelMap map{3};
  for (std::size_t s : {0ul, 2ul, 5ul, 7ul}) {
    const McamCell mcam{map, s};
    const AcamCell acam{mcam_state_range(map, s), map.center()};
    for (std::size_t input = 0; input < map.num_states(); ++input) {
      const double v = map.input_voltage(input);
      EXPECT_NEAR(acam.conductance_at(v) / mcam.conductance_at_voltage(v), 1.0, 1e-6)
          << "state " << s << " input " << input;
    }
  }
}

TEST(AcamArray, MatchingRows) {
  AcamArray array{0.84};
  const std::vector<AnalogRange> row0{{0.0, 1.0}, {0.0, 0.15}, {0.5, 0.8}};
  const std::vector<AnalogRange> row1{{0.2, 0.55}, {0.85, 1.0}, {0.45, 0.85}};
  array.add_row(row0);
  array.add_row(row1);
  // The Fig. 1(a) example: inputs 0.3, 0.1, 0.75 match the first row only.
  const std::vector<double> query{0.3, 0.1, 0.75};
  const auto matches = array.matching_rows(query, kMatchLimit);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0], 0u);
}

TEST(AcamArray, SearchConductancesOrderMismatches) {
  AcamArray array{0.84};
  const std::vector<AnalogRange> near{{0.4, 0.6}};
  const std::vector<AnalogRange> far{{1.0, 1.2}};
  array.add_row(near);
  array.add_row(far);
  const auto g = array.search_conductances(std::vector<double>{0.65});
  EXPECT_LT(g[0], g[1]);  // Slightly outside beats far outside.
}

TEST(AcamArray, Validation) {
  AcamArray array{0.84};
  EXPECT_THROW((void)array.add_row(std::vector<AnalogRange>{}), std::invalid_argument);
  array.add_row(std::vector<AnalogRange>{{0.1, 0.3}, {0.2, 0.4}});
  EXPECT_THROW((void)array.add_row(std::vector<AnalogRange>{{0.1, 0.3}}),
               std::invalid_argument);
  EXPECT_THROW((void)array.search_conductances(std::vector<double>{0.5}),
               std::invalid_argument);
}

TEST(AcamArray, OverlappingRangesBothMatch) {
  // Unlike MCAM states, ACAM ranges may overlap: one input can match
  // multiple rows (the generality MCAM trades away for robustness).
  AcamArray array{0.84};
  array.add_row(std::vector<AnalogRange>{{0.3, 0.7}});
  array.add_row(std::vector<AnalogRange>{{0.5, 0.9}});
  const auto matches = array.matching_rows(std::vector<double>{0.6}, kMatchLimit);
  EXPECT_EQ(matches.size(), 2u);
}

}  // namespace
}  // namespace mcam::cam
