#include "circuit/matchline.hpp"
#include "circuit/rc.hpp"
#include "circuit/senseamp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mcam::circuit {
namespace {

TEST(Rc, AnalyticDischargeAtTimeConstant) {
  // After one time constant (t = C/G) the voltage is v0/e.
  const double v = discharge_voltage(0.8, 1e-6, 2e-14, 2e-8);
  EXPECT_NEAR(v, 0.8 / std::exp(1.0), 1e-9);
}

TEST(Rc, TimeToCrossMatchesClosedForm) {
  const double t = time_to_cross(0.8, 0.4, 1e-6, 2e-14);
  EXPECT_NEAR(t, 2e-8 * std::log(2.0), 1e-15);
  EXPECT_NEAR(discharge_voltage(0.8, 1e-6, 2e-14, t), 0.4, 1e-9);
}

TEST(Rc, ZeroConductanceNeverCrosses) {
  EXPECT_TRUE(std::isinf(time_to_cross(0.8, 0.4, 0.0, 1e-14)));
}

TEST(Rc, TimeToCrossValidatesArguments) {
  EXPECT_THROW((void)time_to_cross(0.0, 0.4, 1e-6, 1e-14), std::invalid_argument);
  EXPECT_THROW((void)time_to_cross(0.8, 0.9, 1e-6, 1e-14), std::invalid_argument);
  EXPECT_THROW((void)time_to_cross(0.8, -0.1, 1e-6, 1e-14), std::invalid_argument);
}

TEST(Rc, Rk4MatchesAnalyticForConstantG) {
  constexpr double kG = 2e-6;
  constexpr double kC = 1.5e-14;
  const Waveform wf = integrate_discharge(0.8, kC, [](double) { return kG; }, 5e-8, 1e-10);
  for (std::size_t i = 0; i < wf.samples.size(); i += 50) {
    const double t = wf.dt * static_cast<double>(i);
    EXPECT_NEAR(wf.samples[i], discharge_voltage(0.8, kG, kC, t), 1e-5);
  }
}

TEST(Rc, CrossingTimeInterpolates) {
  constexpr double kG = 2e-6;
  constexpr double kC = 1.5e-14;
  const Waveform wf = integrate_discharge(0.8, kC, [](double) { return kG; }, 5e-8, 1e-10);
  const double t_num = wf.crossing_time(0.4);
  const double t_ana = time_to_cross(0.8, 0.4, kG, kC);
  EXPECT_NEAR(t_num, t_ana, 1e-11);
}

TEST(Rc, CrossingTimeNegativeWhenNotReached) {
  const Waveform wf =
      integrate_discharge(0.8, 1e-12, [](double) { return 1e-9; }, 1e-9, 1e-11);
  EXPECT_LT(wf.crossing_time(0.1), 0.0);
}

TEST(Rc, NonlinearConductanceDischargesFasterWhenGRises) {
  // A conductance that rises at low V discharges the tail faster than the
  // constant-G case matched at V0.
  constexpr double kC = 1e-14;
  const auto g_const = [](double) { return 1e-6; };
  const auto g_rising = [](double v) { return 1e-6 * (1.0 + (0.8 - v)); };
  const Waveform a = integrate_discharge(0.8, kC, g_const, 4e-8, 1e-10);
  const Waveform b = integrate_discharge(0.8, kC, g_rising, 4e-8, 1e-10);
  EXPECT_GT(a.crossing_time(0.2), b.crossing_time(0.2));
}

TEST(Rc, InvalidIntegrationArgsThrow) {
  EXPECT_THROW((void)integrate_discharge(0.8, 1e-14, [](double) { return 1e-6; }, 0.0, 1e-10),
               std::invalid_argument);
  EXPECT_THROW((void)integrate_discharge(0.8, 1e-14, [](double) { return 1e-6; }, 1e-8, 0.0),
               std::invalid_argument);
}

TEST(Matchline, CapacitanceScalesWithCells) {
  const MatchlineParams params;
  const Matchline small{params, 16};
  const Matchline large{params, 64};
  EXPECT_NEAR(large.capacitance() - small.capacitance(), 48.0 * params.c_per_cell, 1e-21);
}

TEST(Matchline, SmallerConductanceDischargesSlower) {
  const Matchline ml{MatchlineParams{}, 64};
  EXPECT_GT(ml.discharge_time(1e-8), ml.discharge_time(1e-6));
}

TEST(Matchline, VoltageAtDecays) {
  const Matchline ml{MatchlineParams{}, 64};
  const double t = ml.discharge_time(1e-6);
  EXPECT_NEAR(ml.voltage_at(1e-6, t), MatchlineParams{}.v_reference, 1e-9);
}

TEST(Matchline, PrechargeEnergyIsCV2) {
  const MatchlineParams params;
  const Matchline ml{params, 64};
  EXPECT_NEAR(ml.precharge_energy(),
              ml.capacitance() * params.v_precharge * params.v_precharge, 1e-24);
}

TEST(SenseAmp, WinnerIsSlowestDischarge) {
  const Matchline ml{MatchlineParams{}, 16};
  const WinnerTakeAllSense sense{ml};
  // Smallest conductance = smallest distance = slowest = winner.
  const std::vector<double> g{5e-7, 1e-7, 8e-7, 3e-7};
  const SenseResult result = sense.sense(g);
  EXPECT_EQ(result.winner, 1u);
  EXPECT_EQ(result.runner_up, 3u);
  EXPECT_GT(result.margin, 0.0);
  EXPECT_FALSE(result.tie);
}

TEST(SenseAmp, SingleRowWins) {
  const Matchline ml{MatchlineParams{}, 16};
  const WinnerTakeAllSense sense{ml};
  const SenseResult result = sense.sense(std::vector<double>{4e-7});
  EXPECT_EQ(result.winner, 0u);
  EXPECT_TRUE(std::isinf(result.margin));
}

TEST(SenseAmp, EmptyThrows) {
  const Matchline ml{MatchlineParams{}, 16};
  const WinnerTakeAllSense sense{ml};
  EXPECT_THROW((void)sense.sense(std::vector<double>{}), std::invalid_argument);
}

TEST(SenseAmp, CoarseClockCausesTies) {
  const Matchline ml{MatchlineParams{}, 16};
  // A very coarse sampling clock quantizes both rows into the same slot.
  const WinnerTakeAllSense coarse{ml, 1.0};
  const SenseResult result = coarse.sense(std::vector<double>{1.00e-7, 1.01e-7});
  EXPECT_TRUE(result.tie);
  EXPECT_EQ(result.winner, 0u);  // Lowest index wins ties.
}

TEST(SenseAmp, FineClockPreservesOrder) {
  const Matchline ml{MatchlineParams{}, 16};
  const WinnerTakeAllSense ideal{ml, 0.0};
  const WinnerTakeAllSense fine{ml, 1e-12};
  const std::vector<double> g{4e-7, 1e-7, 2e-7, 9e-7, 3e-7};
  EXPECT_EQ(ideal.sense(g).winner, fine.sense(g).winner);
}

TEST(SenseAmp, MarginShrinksWithCloserConductances) {
  const Matchline ml{MatchlineParams{}, 16};
  const WinnerTakeAllSense sense{ml};
  const double wide = sense.sense(std::vector<double>{1e-7, 5e-7}).margin;
  const double narrow = sense.sense(std::vector<double>{1e-7, 1.2e-7}).margin;
  EXPECT_GT(wide, narrow);
}

}  // namespace
}  // namespace mcam::circuit
