// Cross-module integration tests: each asserts one of the paper's
// headline claims end-to-end, wiring device physics -> arrays -> encoders
// -> applications exactly as the benches do (smaller budgets, fixed seeds).
#include "cam/acam.hpp"
#include "data/uci_synth.hpp"
#include "energy/model.hpp"
#include "experiments/harness.hpp"
#include "experiments/stack.hpp"
#include "fefet/variation.hpp"

#include <gtest/gtest.h>

namespace mcam {
namespace {

using experiments::Method;

TEST(PaperClaims, DistanceFunctionShape) {
  // Sec. III-B: exponential growth + saturating tail + derivative bell.
  const experiments::Stack stack;
  const auto lut = cam::ConductanceLut::nominal(stack.level_map(3), stack.channel());
  const auto profile = cam::distance_profile(lut, 0);
  // Growth of >= 2x per step through d=4.
  for (std::size_t d = 1; d <= 4; ++d) {
    EXPECT_GT(profile.conductance[d] / profile.conductance[d - 1], 2.0);
  }
  // Tail step d=6 -> 7 adds < 10% (saturation).
  EXPECT_LT(profile.conductance[7] / profile.conductance[6], 1.10);
}

TEST(PaperClaims, FullPipelineVariationToleranceAtFig5Sigma) {
  // The sigma the Fig. 5 Monte-Carlo study produces must be inside the
  // flat region of the Fig. 8 sweep: physics and application consistent.
  const experiments::Stack stack;
  const fefet::VariationStudy study{stack.preisach(), stack.vth_map(), stack.programmer(3)};
  const auto distributions = study.run(150, 99);
  const double sigma = fefet::VariationStudy::max_sigma(distributions);
  EXPECT_LT(sigma, 0.10);  // Fig. 5: up to ~80 mV.

  experiments::FewShotOptions options;
  options.episodes = 50;
  experiments::EngineOptions clean = experiments::paper_engine_options();
  experiments::EngineOptions at_fig5_sigma = clean;
  at_fig5_sigma.vth_sigma = sigma;
  const double acc_clean =
      experiments::run_few_shot(data::TaskSpec{5, 1, 5}, Method::kMcam3, options, clean)
          .accuracy;
  const double acc_noisy = experiments::run_few_shot(data::TaskSpec{5, 1, 5}, Method::kMcam3,
                                                     options, at_fig5_sigma)
                               .accuracy;
  EXPECT_GT(acc_noisy, acc_clean - 0.03);  // "No accuracy loss up to 80 mV".
}

TEST(PaperClaims, Figure6OrderingAcrossAllDatasets) {
  for (const data::Dataset& dataset : data::make_uci_suite(7)) {
    double mcam3 = 0.0;
    double lsh = 0.0;
    double euclidean = 0.0;
    constexpr int kSplits = 3;
    for (int s = 0; s < kSplits; ++s) {
      mcam3 += experiments::run_classification(dataset, Method::kMcam3, 100 + s);
      lsh += experiments::run_classification(dataset, Method::kTcamLsh, 100 + s);
      euclidean += experiments::run_classification(dataset, Method::kEuclidean, 100 + s);
    }
    EXPECT_GT(mcam3, lsh) << dataset.name;                 // MCAM beats TCAM+LSH.
    EXPECT_GT(mcam3, euclidean - 0.06 * kSplits) << dataset.name;  // ~software level.
  }
}

TEST(PaperClaims, Figure7AverageGains) {
  // 3-bit MCAM ~ +13%, 2-bit ~ +11.6% over TCAM+LSH averaged over tasks.
  experiments::FewShotOptions options;
  options.episodes = 60;
  const experiments::EngineOptions engine_options = experiments::paper_engine_options();
  const data::TaskSpec tasks[] = {{5, 1, 5}, {5, 5, 5}, {20, 1, 5}, {20, 5, 5}};
  double gain3 = 0.0;
  double gain2 = 0.0;
  for (const auto& task : tasks) {
    const double m3 =
        experiments::run_few_shot(task, Method::kMcam3, options, engine_options).accuracy;
    const double m2 =
        experiments::run_few_shot(task, Method::kMcam2, options, engine_options).accuracy;
    const double lsh =
        experiments::run_few_shot(task, Method::kTcamLsh, options, engine_options).accuracy;
    gain3 += m3 - lsh;
    gain2 += m2 - lsh;
  }
  EXPECT_NEAR(gain3 / 4.0, 0.13, 0.05);   // Paper: 13%.
  EXPECT_NEAR(gain2 / 4.0, 0.116, 0.05);  // Paper: 11.6%.
  EXPECT_GT(gain3, gain2);                // 3-bit >= 2-bit on average.
}

TEST(PaperClaims, EnergyDelayHeadlines) {
  const experiments::Stack stack;
  const energy::ArrayEnergyModel model{energy::ArrayParams{}};
  const energy::MannEndToEndModel e2e{energy::GpuBaselineParams{}, model};
  const auto map = stack.level_map(3);
  // Search +56%-ish, program cheaper, end-to-end 4.4x/4.5x.
  EXPECT_NEAR(model.mcam_search_energy(25, 64, map) / model.tcam_search_energy(25, 64),
              1.56, 0.12);
  EXPECT_LT(model.mcam_program_energy(25, 64, stack.programmer(3)),
            model.tcam_program_energy(25, 64, stack.pulse_scheme()));
  EXPECT_NEAR(e2e.latency_gain(e2e.mcam_cost(25, 64, map)), 4.5, 0.2);
  EXPECT_NEAR(e2e.energy_gain(e2e.mcam_cost(25, 64, map)), 4.4, 0.2);
}

TEST(PaperClaims, McamIsSpecialCaseOfAcam) {
  // Sec. II-A: every MCAM search result is reproducible by an ACAM storing
  // the narrow state windows and searched at the input voltages.
  const fefet::LevelMap map{3};
  cam::McamArray mcam{cam::McamArrayConfig{}};
  cam::AcamArray acam{map.center()};
  Rng rng{5};
  std::vector<std::vector<std::uint16_t>> rows;
  for (int r = 0; r < 8; ++r) {
    std::vector<std::uint16_t> levels(12);
    std::vector<cam::AnalogRange> ranges(12);
    for (std::size_t c = 0; c < 12; ++c) {
      levels[c] = static_cast<std::uint16_t>(rng.index(8));
      ranges[c] = cam::mcam_state_range(map, levels[c]);
    }
    rows.push_back(levels);
    mcam.add_row(levels);
    acam.add_row(ranges);
  }
  for (int q = 0; q < 20; ++q) {
    std::vector<std::uint16_t> query(12);
    std::vector<double> voltages(12);
    for (std::size_t c = 0; c < 12; ++c) {
      query[c] = static_cast<std::uint16_t>(rng.index(8));
      voltages[c] = map.input_voltage(query[c]);
    }
    const auto g_mcam = mcam.search_conductances(query);
    const auto g_acam = acam.search_conductances(voltages);
    for (std::size_t r = 0; r < g_mcam.size(); ++r) {
      EXPECT_NEAR(g_acam[r] / g_mcam[r], 1.0, 1e-6);
    }
  }
}

TEST(PaperClaims, SameEpisodesForEveryMethod) {
  // The harness must feed identical episode streams to every method (the
  // comparison isolates the distance function, not the data).
  experiments::FewShotOptions options;
  options.episodes = 10;
  const auto a = experiments::run_few_shot(data::TaskSpec{5, 1, 5}, Method::kCosine, options,
                                           experiments::EngineOptions{});
  const auto b = experiments::run_few_shot(data::TaskSpec{5, 1, 5}, Method::kEuclidean,
                                           options, experiments::EngineOptions{});
  EXPECT_EQ(a.queries, b.queries);
  EXPECT_EQ(a.episodes, b.episodes);
}

}  // namespace
}  // namespace mcam
