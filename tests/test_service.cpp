// QueryService invariants: every accepted request completes with results
// identical to direct query_one, full-queue rejections are reported (never
// dropped or blocked on), the LRU cache can never serve a tombstoned row
// after erase (generation-checked inserts), and ServiceStats percentiles /
// hit rates / queue depths are populated. Also the erase-then-query
// tombstone property across every path: monolithic backends, sharded
// backends, and the service cache.
#include "serve/service.hpp"

#include "search/batch.hpp"
#include "search/factory.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

namespace mcam::serve {
namespace {

using search::EngineConfig;
using search::NnIndex;
using search::QueryResult;

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.3 + (i % 2) * 0.4, 0.6));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 3);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 3)));
  }
  return data;
}

void expect_identical(const QueryResult& served, const QueryResult& direct,
                      const std::string& context) {
  EXPECT_EQ(served.label, direct.label) << context;
  ASSERT_EQ(served.neighbors.size(), direct.neighbors.size()) << context;
  for (std::size_t i = 0; i < direct.neighbors.size(); ++i) {
    EXPECT_EQ(served.neighbors[i].index, direct.neighbors[i].index) << context;
    EXPECT_EQ(served.neighbors[i].distance, direct.neighbors[i].distance) << context;
  }
}

/// Wraps an index with an artificial per-query delay so queue-full
/// rejections are deterministic in the backpressure test.
class SlowIndex final : public NnIndex {
 public:
  SlowIndex(NnIndex& inner, std::chrono::milliseconds delay)
      : inner_(inner), delay_(delay) {}
  void add(std::span<const std::vector<float>> rows, std::span<const int> labels) override {
    inner_.add(rows, labels);
  }
  void clear() override { inner_.clear(); }
  bool erase(std::size_t id) override { return inner_.erase(id); }
  [[nodiscard]] std::size_t size() const override { return inner_.size(); }
  [[nodiscard]] QueryResult query_one(std::span<const float> query,
                                      std::size_t k) const override {
    std::this_thread::sleep_for(delay_);
    return inner_.query_one(query, k);
  }
  [[nodiscard]] std::string name() const override { return "slow " + inner_.name(); }

 private:
  NnIndex& inner_;
  std::chrono::milliseconds delay_;
};

TEST(QueryService, ConcurrentClientsMatchDirectQueries) {
  const Data data = make_data(120, 6, 16, 401);
  EngineConfig config;
  config.num_features = 6;
  config.bank_rows = 32;
  config.shard_workers = 1;  // The service pool is the outer parallel layer.
  auto index = search::make_index("sharded-mcam3", config);
  index->add(data.rows, data.labels);

  // Expected answers, computed directly before the service exists.
  std::vector<QueryResult> expected;
  expected.reserve(data.queries.size());
  for (const auto& q : data.queries) expected.push_back(index->query_one(q, 5));

  QueryServiceConfig service_config;
  service_config.workers = 4;
  service_config.queue_capacity = 4096;
  service_config.cache_capacity = 64;
  QueryService service{*index, service_config};

  constexpr std::size_t kClients = 6;
  constexpr std::size_t kPerClient = 40;
  std::vector<std::thread> clients;
  std::vector<std::vector<std::future<QueryResponse>>> futures(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::size_t i = 0; i < kPerClient; ++i) {
        const std::size_t qi = (c * kPerClient + i) % data.queries.size();
        futures[c].push_back(service.submit(data.queries[qi], 5));
      }
    });
  }
  for (auto& t : clients) t.join();

  std::size_t completed = 0;
  for (std::size_t c = 0; c < kClients; ++c) {
    for (std::size_t i = 0; i < futures[c].size(); ++i) {
      QueryResponse response = futures[c][i].get();
      ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
      const std::size_t qi = (c * kPerClient + i) % data.queries.size();
      expect_identical(response.result, expected[qi],
                       "client " + std::to_string(c) + " req " + std::to_string(i));
      ++completed;
    }
  }
  EXPECT_EQ(completed, kClients * kPerClient);

  // The cache is warm now (workers inserted every distinct result, and 16
  // keys cannot evict from 64 slots), so sequential repeats must hit and
  // still match the direct answers.
  for (std::size_t qi = 0; qi < data.queries.size(); ++qi) {
    const QueryResponse hit = service.query_one(data.queries[qi], 5);
    ASSERT_EQ(hit.status, RequestStatus::kOk);
    EXPECT_TRUE(hit.cache_hit) << "query " << qi;
    expect_identical(hit.result, expected[qi], "cache hit " + std::to_string(qi));
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, kClients * kPerClient + data.queries.size());
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.completed + stats.failed, stats.accepted);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GE(stats.cache_hits, data.queries.size());
  EXPECT_GT(stats.cache_hit_rate, 0.0);
  EXPECT_GE(stats.latency_p95_ms, stats.latency_p50_ms);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p95_ms);
  EXPECT_GT(stats.throughput_qps, 0.0);
  EXPECT_EQ(stats.workers, 4u);
}

TEST(QueryService, FullQueueRejectsWithStatusAndAcceptedStillComplete) {
  const Data data = make_data(40, 4, 8, 403);
  auto index = search::make_index("euclidean", EngineConfig{});
  index->add(data.rows, data.labels);
  SlowIndex slow{*index, std::chrono::milliseconds{20}};

  QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.queue_capacity = 2;
  QueryService service{slow, service_config};

  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 12; ++i) {
    futures.push_back(service.submit(data.queries[i % data.queries.size()], 3));
  }
  std::size_t ok = 0;
  std::size_t rejected = 0;
  for (auto& f : futures) {
    const QueryResponse response = f.get();
    if (response.status == RequestStatus::kOk) {
      ++ok;
      EXPECT_FALSE(response.result.neighbors.empty());
    } else {
      ASSERT_EQ(response.status, RequestStatus::kRejected);
      EXPECT_NE(response.error.find("queue full"), std::string::npos);
      ++rejected;
    }
  }
  // A 20ms/query worker against an instant submit loop must overflow a
  // 2-deep queue; every outcome is reported, nothing is dropped.
  EXPECT_GT(rejected, 0u);
  EXPECT_EQ(ok + rejected, 12u);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.accepted, ok);
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_LE(stats.queue_depth_peak, 2u);
  EXPECT_GE(stats.latency_p50_ms, 0.0);
}

TEST(QueryService, StopDrainsAcceptedAndRejectsLateSubmits) {
  const Data data = make_data(30, 4, 4, 405);
  auto index = search::make_index("manhattan", EngineConfig{});
  index->add(data.rows, data.labels);
  SlowIndex slow{*index, std::chrono::milliseconds{5}};

  QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.queue_capacity = 64;
  service_config.cache_capacity = 8;
  QueryService service{slow, service_config};
  std::vector<std::future<QueryResponse>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(service.submit(data.queries[i % data.queries.size()], 1));
  }
  service.stop();
  for (auto& f : futures) {
    EXPECT_EQ(f.get().status, RequestStatus::kOk);  // Accepted => drained.
  }
  // Uniform terminal semantics: even queries sitting in the cache answer
  // kShutdown after stop (the cache is no longer invalidated, so serving
  // from it could return stale results).
  const QueryResponse late = service.query_one(data.queries[0], 1);
  EXPECT_EQ(late.status, RequestStatus::kShutdown);
  const QueryResponse cached_late = service.query_one(data.queries[1], 1);
  EXPECT_EQ(cached_late.status, RequestStatus::kShutdown);
  EXPECT_FALSE(cached_late.cache_hit);
}

TEST(QueryService, FailedQueriesReportErrorNotCrash) {
  auto index = search::make_index("cosine", EngineConfig{});
  QueryService service{*index, QueryServiceConfig{}};
  // Querying an empty index throws inside the worker; the future must
  // resolve to kFailed with the message, and the service must survive.
  const QueryResponse response = service.query_one({1.0f, 2.0f}, 1);
  EXPECT_EQ(response.status, RequestStatus::kFailed);
  EXPECT_FALSE(response.error.empty());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
}

TEST(Tombstones, EraseIsNeverServedFromAnyPath) {
  // Satellite acceptance: erase(id) followed by query_one must never
  // return the tombstoned row - monolithic, sharded, or service cache.
  const Data data = make_data(60, 5, 4, 407);
  for (const std::string& name : search::EngineFactory::instance().registered_names()) {
    EngineConfig config;
    config.num_features = 5;
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 16 : 0;
    config.shard_workers = 1;
    if (name == "refine") config.fine_spec = "euclidean";
    auto index = search::make_index(name, config);
    index->add(data.rows, data.labels);
    const std::size_t victim = 11;
    ASSERT_TRUE(index->erase(victim)) << name;
    for (const auto& q : data.queries) {
      const QueryResult result = index->query_one(q, index->size());
      for (const auto& n : result.neighbors) {
        EXPECT_NE(n.index, victim) << name << ": tombstoned row served";
      }
    }
  }
}

TEST(Tombstones, ServiceCacheInvalidatesOnEraseAndAdd) {
  const Data data = make_data(50, 5, 1, 409);
  EngineConfig config;
  config.num_features = 5;
  config.bank_rows = 16;
  auto index = search::make_index("sharded-euclidean", config);
  index->add(data.rows, data.labels);

  QueryServiceConfig service_config;
  service_config.workers = 2;
  service_config.cache_capacity = 32;
  QueryService service{*index, service_config};

  const std::vector<float>& q = data.queries.front();
  const std::size_t k = data.rows.size();  // Full ranking: every live row.
  const QueryResponse first = service.query_one(q, k);
  ASSERT_EQ(first.status, RequestStatus::kOk);

  // Warm the cache, then prove the hit path works pre-erase.
  const QueryResponse warm = service.query_one(q, k);
  ASSERT_EQ(warm.status, RequestStatus::kOk);
  EXPECT_TRUE(warm.cache_hit);
  expect_identical(warm.result, first.result, "warm hit");

  const std::size_t victim = first.result.neighbors.front().index;
  EXPECT_TRUE(service.erase(victim));
  const QueryResponse after = service.query_one(q, k);
  ASSERT_EQ(after.status, RequestStatus::kOk);
  EXPECT_FALSE(after.cache_hit) << "erase must invalidate the cache";
  for (const auto& n : after.result.neighbors) {
    EXPECT_NE(n.index, victim) << "tombstoned row served from the service";
  }

  // add() invalidates too: the previously cached (post-erase) result must
  // be recomputed over the enlarged index.
  const QueryResponse recached = service.query_one(q, k);
  EXPECT_TRUE(recached.cache_hit);
  const Data extra = make_data(8, 5, 0, 411);
  service.add(extra.rows, extra.labels);
  const QueryResponse grown = service.query_one(q, k + extra.rows.size());
  ASSERT_EQ(grown.status, RequestStatus::kOk);
  EXPECT_FALSE(grown.cache_hit);
  EXPECT_EQ(grown.result.neighbors.size(), data.rows.size() - 1 + extra.rows.size());

  const ServiceStats stats = service.stats();
  EXPECT_GE(stats.invalidations, 2u);
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(QueryService, MutationsInterleavedWithConcurrentClientsStaySane) {
  // Torture loop for the lock/cache interaction (ASan/TSan fodder): half
  // the threads query, one thread adds and erases. Every response must be
  // kOk (never a torn read / stale cache crash), and erased victims must
  // never appear in post-completion results read after the mutator joins.
  const Data data = make_data(90, 5, 6, 413);
  EngineConfig config;
  config.num_features = 5;
  config.bank_rows = 32;
  config.shard_workers = 1;
  auto index = search::make_index("sharded-mcam2", config);
  index->add(data.rows, data.labels);

  QueryServiceConfig service_config;
  service_config.workers = 3;
  service_config.queue_capacity = 4096;
  service_config.cache_capacity = 16;
  QueryService service{*index, service_config};

  std::atomic<bool> stop{false};
  std::vector<std::thread> clients;
  std::atomic<std::size_t> served{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      std::size_t i = 0;
      while (!stop.load()) {
        auto response = service.submit(data.queries[(c + i++) % data.queries.size()], 3);
        const QueryResponse r = response.get();
        if (r.status == RequestStatus::kOk) served.fetch_add(1);
      }
    });
  }
  const Data extra = make_data(30, 5, 0, 415);
  for (std::size_t m = 0; m < extra.rows.size(); ++m) {
    service.add(std::span{extra.rows}.subspan(m, 1), std::span{extra.labels}.subspan(m, 1));
    (void)service.erase(m);  // Tombstone the seed rows one by one.
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  EXPECT_GT(served.load(), 0u);

  // After the dust settles: erased ids 0..29 must be unreachable.
  const QueryResponse final_state = service.query_one(data.queries[0], service.size());
  ASSERT_EQ(final_state.status, RequestStatus::kOk);
  for (const auto& n : final_state.result.neighbors) {
    EXPECT_GE(n.index, extra.rows.size());
  }
}

TEST(KConvention, CacheNormalizesZeroKToOneNn) {
  // Satellite (k-convention drift): the cache key includes k, so without
  // normalization the same logical query was cached twice - and answered
  // twice - under k = 0 and k = 1. The probe now sees one key.
  const Data data = make_data(30, 4, 1, 431);
  EngineConfig config;
  config.num_features = 4;
  auto index = search::make_index("euclidean", config);
  index->add(data.rows, data.labels);

  QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.cache_capacity = 8;
  QueryService service{*index, service_config};

  const QueryResponse via_zero = service.query_one(data.queries[0], 0);
  ASSERT_EQ(via_zero.status, RequestStatus::kOk);
  EXPECT_FALSE(via_zero.cache_hit);
  ASSERT_EQ(via_zero.result.neighbors.size(), 1u);  // k = 0 -> 1-NN.

  const QueryResponse via_one = service.query_one(data.queries[0], 1);
  ASSERT_EQ(via_one.status, RequestStatus::kOk);
  EXPECT_TRUE(via_one.cache_hit) << "k=0 and k=1 must share one cache entry";
  expect_identical(via_one.result, via_zero.result, "k=0/k=1 cache unification");

  // The upper bound normalizes too: any k past size() is the same
  // logical full-index query and must share one cache entry.
  const QueryResponse via_forty = service.query_one(data.queries[0], 40);
  ASSERT_EQ(via_forty.status, RequestStatus::kOk);
  EXPECT_FALSE(via_forty.cache_hit);
  EXPECT_EQ(via_forty.result.neighbors.size(), 30u);
  const QueryResponse via_thirty_one = service.query_one(data.queries[0], 31);
  ASSERT_EQ(via_thirty_one.status, RequestStatus::kOk);
  EXPECT_TRUE(via_thirty_one.cache_hit) << "k>size must normalize to one cache entry";
  expect_identical(via_thirty_one.result, via_forty.result, "k>size cache unification");

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cache_lookups, 4u);
  EXPECT_EQ(stats.cache_hits, 2u);
}

TEST(CoarseMarginStats, ServiceObservesTheMarginDistribution) {
  // The two-stage pipeline reports a coarse nomination margin per
  // executed query; the service aggregates it so an adaptive
  // candidate_factor policy has a distribution to read. Cache hits replay
  // results without sweeping the TCAM, so they must not be counted.
  const Data data = make_data(60, 6, 4, 431);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 24;
  config.candidate_factor = 2;
  auto index = search::make_index("refine", config);
  index->add(data.rows, data.labels);

  QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.cache_capacity = 8;
  QueryService service{*index, service_config};
  for (const auto& q : data.queries) {
    const QueryResponse response = service.query_one(q, 3);
    ASSERT_EQ(response.status, RequestStatus::kOk);
    EXPECT_EQ(response.result.telemetry.probes_used, 1u);
  }
  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coarse_margin_queries, data.queries.size());
  EXPECT_GE(stats.coarse_margin_mean, 0.0);
  EXPECT_GE(stats.coarse_margin_p95, stats.coarse_margin_p50);
  const std::size_t executed = stats.coarse_margin_queries;

  // A repeat of the same query is a cache hit: counted as completed, but
  // no new margin sample.
  const QueryResponse hit = service.query_one(data.queries[0], 3);
  ASSERT_EQ(hit.status, RequestStatus::kOk);
  ASSERT_TRUE(hit.cache_hit);
  stats = service.stats();
  EXPECT_EQ(stats.coarse_margin_queries, executed);

  // A query whose candidate budget covers every live row sweeps but has
  // no nomination cut - its margin 0 means "nothing excluded", not "zero
  // confidence", and must not dilute the distribution.
  const QueryResponse all = service.query_one(data.queries[1], 60);
  ASSERT_EQ(all.status, RequestStatus::kOk);
  EXPECT_EQ(all.result.telemetry.probes_used, 1u);
  EXPECT_EQ(all.result.telemetry.fine_candidates, 60u);
  stats = service.stats();
  EXPECT_EQ(stats.coarse_margin_queries, executed);

  // An index without a coarse stage never contributes margin samples.
  auto flat = search::make_index("euclidean", EngineConfig{});
  flat->add(data.rows, data.labels);
  QueryService flat_service{*flat, service_config};
  for (const auto& q : data.queries) {
    ASSERT_EQ(flat_service.query_one(q, 3).status, RequestStatus::kOk);
  }
  const ServiceStats flat_stats = flat_service.stats();
  EXPECT_EQ(flat_stats.coarse_margin_queries, 0u);
  EXPECT_EQ(flat_stats.coarse_margin_mean, 0.0);
  EXPECT_EQ(flat_stats.coarse_margin_p95, 0.0);
}

TEST(CoarseMarginStats, RingWraparoundKeepsOnlyTheLastWindow) {
  // The margin ring shares latency_window: with a 4-deep window, 10
  // executed queries must leave the *last 4* margins in the percentile
  // sample while the cumulative counter keeps all 10.
  const Data data = make_data(60, 6, 10, 947);
  EngineConfig config;
  config.num_features = 6;
  config.fine_spec = "euclidean";
  config.coarse_bits = 24;
  config.candidate_factor = 2;
  auto index = search::make_index("refine", config);
  index->add(data.rows, data.labels);

  // Ground truth: the margins the engine reports directly (deterministic
  // under kIdealSum, and queries mutate nothing).
  std::vector<double> margins;
  for (const auto& q : data.queries) {
    margins.push_back(index->query_one(q, 3).telemetry.coarse_margin);
  }
  std::vector<double> window(margins.end() - 4, margins.end());
  std::sort(window.begin(), window.end());
  double expected_mean = 0.0;
  for (double m : window) expected_mean += m;
  expected_mean /= static_cast<double>(window.size());

  QueryServiceConfig service_config;
  service_config.workers = 1;
  service_config.latency_window = 4;
  QueryService service{*index, service_config};
  for (const auto& q : data.queries) {
    ASSERT_EQ(service.query_one(q, 3).status, RequestStatus::kOk);
  }

  ServiceStats stats = service.stats();
  EXPECT_EQ(stats.coarse_margin_queries, data.queries.size());  // Cumulative.
  EXPECT_DOUBLE_EQ(stats.coarse_margin_mean, expected_mean);    // Window only.
  EXPECT_DOUBLE_EQ(stats.coarse_margin_p50, nearest_rank_percentile(window, 50.0));
  EXPECT_DOUBLE_EQ(stats.coarse_margin_p95, nearest_rank_percentile(window, 95.0));

  // stats() after stop() still serves the final counters (no deadlock, no
  // reset): the telemetry outlives the worker pool.
  service.stop();
  const ServiceStats after = service.stats();
  EXPECT_EQ(after.coarse_margin_queries, stats.coarse_margin_queries);
  EXPECT_DOUBLE_EQ(after.coarse_margin_mean, stats.coarse_margin_mean);
  EXPECT_DOUBLE_EQ(after.coarse_margin_p50, stats.coarse_margin_p50);
  EXPECT_DOUBLE_EQ(after.coarse_margin_p95, stats.coarse_margin_p95);
  EXPECT_EQ(after.completed, data.queries.size());
}

TEST(LatencyWindow, NearestRankPercentileBoundaries) {
  // The estimator behind ServiceStats percentiles, pinned at the window
  // boundaries the sliding window actually produces.
  EXPECT_DOUBLE_EQ(nearest_rank_percentile({}, 99.0), 0.0);  // Empty window.
  // One sample: every percentile is that sample.
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(one, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(one, 99.0), 7.5);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(one, 0.0), 7.5);
  // Two samples: p50 is the first (rank ceil(1.0) = 1), p99 the second
  // (rank ceil(1.98) = 2) - nearest-rank never interpolates.
  const std::vector<double> two{1.0, 9.0};
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(two, 50.0), 1.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(two, 51.0), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(two, 95.0), 9.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(two, 99.0), 9.0);
  // Exactly full window: every rank reachable, p100 = max, p0 = min.
  const std::vector<double> four{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 25.0), 1.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 26.0), 2.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 75.0), 3.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 99.0), 4.0);
  EXPECT_DOUBLE_EQ(nearest_rank_percentile(four, 100.0), 4.0);
}

TEST(LatencyWindow, TinyWindowsAndExactFillAndWraparound) {
  const Data data = make_data(20, 4, 3, 433);
  EngineConfig config;
  config.num_features = 4;
  auto index = search::make_index("euclidean", config);
  index->add(data.rows, data.labels);

  {
    // Window of 1: the percentiles collapse onto the single retained
    // sample, p50 == p95 == p99, even after many completions overwrite it.
    QueryServiceConfig service_config;
    service_config.workers = 1;
    service_config.latency_window = 1;
    QueryService service{*index, service_config};
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(service.query_one(data.queries[0], 2).status, RequestStatus::kOk);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 5u);
    EXPECT_GT(stats.latency_p50_ms, 0.0);
    EXPECT_DOUBLE_EQ(stats.latency_p50_ms, stats.latency_p95_ms);
    EXPECT_DOUBLE_EQ(stats.latency_p95_ms, stats.latency_p99_ms);
  }
  {
    // Window of 2 at exact fill (latency_count_ == window): both samples
    // participate, p50 = the smaller, p99 = the larger.
    QueryServiceConfig service_config;
    service_config.workers = 1;
    service_config.latency_window = 2;
    QueryService service{*index, service_config};
    ASSERT_EQ(service.query_one(data.queries[0], 2).status, RequestStatus::kOk);
    ASSERT_EQ(service.query_one(data.queries[1], 2).status, RequestStatus::kOk);
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 2u);
    EXPECT_GT(stats.latency_p50_ms, 0.0);
    EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
    EXPECT_DOUBLE_EQ(stats.latency_p95_ms, stats.latency_p99_ms);
  }
  {
    // Wraparound: more completions than the window; the ring overwrites
    // the oldest samples, the count saturates at the window size, and the
    // percentile invariants keep holding (no stale zero-initialized slots
    // drag p50 to 0 once the window has been filled).
    QueryServiceConfig service_config;
    service_config.workers = 1;
    service_config.latency_window = 4;
    QueryService service{*index, service_config};
    for (int i = 0; i < 11; ++i) {
      ASSERT_EQ(service.query_one(data.queries[i % 3], 3).status, RequestStatus::kOk);
    }
    const ServiceStats stats = service.stats();
    EXPECT_EQ(stats.completed, 11u);
    EXPECT_GT(stats.latency_p50_ms, 0.0);
    EXPECT_LE(stats.latency_p50_ms, stats.latency_p95_ms);
    EXPECT_LE(stats.latency_p95_ms, stats.latency_p99_ms);
  }
}

TEST(WorkerDefaults, SingleCoreResolvesToOneInlineWorker) {
  // Satellite: defaults clamp to 1 on single-core / unknown hosts so the
  // spawn-free inline paths run; explicit requests always win.
  EXPECT_EQ(search::resolve_worker_count(0, 0), 1u);
  EXPECT_EQ(search::resolve_worker_count(0, 1), 1u);
  EXPECT_EQ(search::resolve_worker_count(0, 8), 8u);
  EXPECT_EQ(search::resolve_worker_count(3, 1), 3u);
  EXPECT_EQ(search::default_worker_count(),
            search::resolve_worker_count(0, std::thread::hardware_concurrency()));
  // BatchExecutor resolves its default through the same clamp.
  search::BatchExecutor executor{};
  EXPECT_EQ(executor.options().num_threads, search::default_worker_count());
  EXPECT_EQ(executor.threads_for(1), 1u);  // Below min_shard_size: inline.
}

}  // namespace
}  // namespace mcam::serve
