// Shard-merge invariants: ShardedNnIndex over any kIdealSum backend must
// be bit-identical to the monolithic engine (labels, neighbor ids, scores,
// also after interleaved add/erase), tombstone/compaction semantics,
// bank-boundary tie-breaks, capacity bounds, spec-string parsing, and the
// banks_searched telemetry.
#include "search/sharded.hpp"

#include "cam/array.hpp"
#include "cam/tcam.hpp"
#include "mann/memory.hpp"
#include "search/batch.hpp"
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "serve/io.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

namespace mcam::search {
namespace {

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.5 + (i % 3) * 0.3, 0.8));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 4);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 4)));
  }
  return data;
}

/// Bit-identical comparison of two query results (the acceptance bar for
/// the shard merge under kIdealSum).
void expect_identical(const QueryResult& sharded, const QueryResult& monolithic,
                      const std::string& context) {
  EXPECT_EQ(sharded.label, monolithic.label) << context;
  ASSERT_EQ(sharded.neighbors.size(), monolithic.neighbors.size()) << context;
  for (std::size_t i = 0; i < monolithic.neighbors.size(); ++i) {
    EXPECT_EQ(sharded.neighbors[i].index, monolithic.neighbors[i].index)
        << context << " rank " << i;
    EXPECT_EQ(sharded.neighbors[i].label, monolithic.neighbors[i].label)
        << context << " rank " << i;
    EXPECT_EQ(sharded.neighbors[i].distance, monolithic.neighbors[i].distance)
        << context << " rank " << i;  // Exact: same conductance sums.
  }
}

/// Every backend key the registry offers monolithically.
const std::vector<std::string>& backend_keys() {
  static const std::vector<std::string> keys{
      "mcam3", "mcam2", "mcam", "tcam-lsh", "cosine", "euclidean", "manhattan", "linf"};
  return keys;
}

TEST(ShardedIdentity, TopKMatchesMonolithicForEveryBackend) {
  // Property: for random data and random bank geometry, the sharded index
  // returns exactly the monolithic ranking under kIdealSum. Per-bank
  // conductances are globally comparable, and the bank-index tie-break
  // equals the global low-id WTA convention.
  const Data data = make_data(90, 8, 6, 101);
  Rng geometry_rng{77};
  for (const std::string& key : backend_keys()) {
    const std::size_t bank_rows = 1 + geometry_rng.index(40);
    EngineConfig config;
    config.num_features = 8;
    auto monolithic = make_index(key, config);
    EngineConfig sharded_config = config;
    sharded_config.bank_rows = bank_rows;
    sharded_config.shard_workers = 3;
    auto sharded = make_index("sharded-" + key, sharded_config);

    monolithic->add(data.rows, data.labels);
    sharded->add(data.rows, data.labels);
    EXPECT_EQ(sharded->size(), monolithic->size()) << key;

    for (const auto& q : data.queries) {
      for (std::size_t k : {std::size_t{1}, std::size_t{5}, std::size_t{90}}) {
        expect_identical(sharded->query_one(q, k), monolithic->query_one(q, k),
                         key + " bank_rows=" + std::to_string(bank_rows) +
                             " k=" + std::to_string(k));
      }
    }
  }
}

TEST(ShardedIdentity, Acceptance500RowsEightBanksWithInterleavedAddErase) {
  // Acceptance criterion: 500 rows in 64-row banks (8 banks), interleaved
  // add/erase, still bit-identical to the monolithic engine, with
  // banks_searched reported.
  const Data data = make_data(500, 8, 5, 103);
  for (const std::string& key : {std::string{"mcam3"}, std::string{"euclidean"}}) {
    EngineConfig config;
    config.num_features = 8;
    auto monolithic = make_index(key, config);
    EngineConfig sharded_config = config;
    sharded_config.bank_rows = 64;
    sharded_config.shard_workers = 4;
    auto sharded = make_index("sharded-" + key, sharded_config);

    const std::span<const std::vector<float>> rows{data.rows};
    const std::span<const int> labels{data.labels};
    // First wave: 300 rows, then a spread of erases, then the remaining
    // 200 rows, then a second erase wave.
    monolithic->add(rows.subspan(0, 300), labels.subspan(0, 300));
    sharded->add(rows.subspan(0, 300), labels.subspan(0, 300));
    Rng erase_rng{5};
    std::set<std::size_t> erased;
    for (std::size_t e = 0; e < 70; ++e) {
      const std::size_t id = erase_rng.index(300);
      EXPECT_EQ(monolithic->erase(id), sharded->erase(id)) << key;
      erased.insert(id);
    }
    monolithic->add(rows.subspan(300), labels.subspan(300));
    sharded->add(rows.subspan(300), labels.subspan(300));
    for (std::size_t e = 0; e < 60; ++e) {
      const std::size_t id = erase_rng.index(500);
      EXPECT_EQ(monolithic->erase(id), sharded->erase(id)) << key;
      erased.insert(id);
    }
    const std::size_t live = 500 - erased.size();
    EXPECT_EQ(monolithic->size(), live) << key;
    EXPECT_EQ(sharded->size(), live) << key;

    for (const auto& q : data.queries) {
      for (std::size_t k : {std::size_t{1}, std::size_t{13}, live}) {
        const QueryResult s = sharded->query_one(q, k);
        expect_identical(s, monolithic->query_one(q, k),
                         key + " interleaved k=" + std::to_string(k));
        // Every erased id is gone from even the full-size ranking.
        for (const Neighbor& n : s.neighbors) {
          EXPECT_FALSE(erased.count(n.index)) << key << " id " << n.index;
        }
        EXPECT_GE(s.telemetry.banks_searched, 7u) << key;  // 8 banks, maybe compacted.
        EXPECT_EQ(s.telemetry.candidates, live) << key;
      }
    }
  }
}

TEST(ShardedMutation, TombstoneSemanticsAndMonotoneTelemetry) {
  const Data data = make_data(40, 6, 2, 107);
  ShardedConfig config;
  config.bank_rows = 8;
  config.workers = 1;
  ShardedNnIndex index{[] { return std::make_unique<SoftwareNnEngine>("euclidean"); },
                       config};
  index.add(data.rows, data.labels);
  EXPECT_EQ(index.num_banks(), 5u);
  EXPECT_EQ(index.stats().banks_allocated, 5u);

  EXPECT_TRUE(index.erase(11));
  EXPECT_FALSE(index.erase(11));  // Idempotent: already a tombstone.
  EXPECT_EQ(index.size(), data.rows.size() - 1);
  EXPECT_THROW((void)index.erase(data.rows.size()), std::out_of_range);

  // Telemetry counters only ever grow (until clear).
  ShardStats last = index.stats();
  Rng rng{9};
  for (std::size_t e = 0; e < 30; ++e) {
    (void)index.erase(rng.index(data.rows.size()));
    const ShardStats& now = index.stats();
    EXPECT_GE(now.compactions, last.compactions);
    EXPECT_GE(now.rows_reprogrammed, last.rows_reprogrammed);
    EXPECT_GE(now.reprogram_energy_j, last.reprogram_energy_j);
    last = now;
  }
  // A query never returns a dead id and size() tracks the survivors.
  const QueryResult result = index.query_one(data.queries.front(), index.size());
  EXPECT_EQ(result.neighbors.size(), index.size());

  index.clear();
  EXPECT_EQ(index.size(), 0u);
  EXPECT_EQ(index.num_banks(), 0u);
  EXPECT_EQ(index.stats().compactions, 0u);
}

TEST(ShardedMutation, CompactionReprogramsAndDropsEmptyBanks) {
  const Data data = make_data(8, 4, 1, 109);
  ShardedConfig config;
  config.bank_rows = 4;  // Two banks of four.
  config.workers = 1;
  config.compact_dead_fraction = 0.5;
  config.reprogram_energy = [](std::size_t rows, std::size_t cols) {
    return static_cast<double>(rows * cols);  // Countable fake model.
  };
  ShardedNnIndex index{[] { return std::make_unique<SoftwareNnEngine>("euclidean"); },
                       config};
  index.add(data.rows, data.labels);
  ASSERT_EQ(index.num_banks(), 2u);

  // Kill 3 of bank 0's 4 rows: at 3/4 > 1/2 dead the bank compacts down
  // to its single survivor (reprogram energy = 1 row x 4 cells).
  EXPECT_TRUE(index.erase(0));
  EXPECT_TRUE(index.erase(1));
  EXPECT_TRUE(index.erase(2));
  EXPECT_EQ(index.stats().compactions, 1u);
  EXPECT_EQ(index.stats().rows_reprogrammed, 1u);
  EXPECT_DOUBLE_EQ(index.stats().reprogram_energy_j, 4.0);
  EXPECT_EQ(index.num_banks(), 2u);

  // Killing the survivor empties the bank, which is dropped outright.
  EXPECT_TRUE(index.erase(3));
  EXPECT_EQ(index.num_banks(), 1u);
  EXPECT_EQ(index.size(), 4u);
  // Ids 4..7 (bank 1) still resolve after the drop.
  const QueryResult result = index.query_one(data.queries.front(), 4);
  for (const Neighbor& n : result.neighbors) EXPECT_GE(n.index, 4u);
  // Erasing a compacted-away id reports "already erased", not an error.
  EXPECT_FALSE(index.erase(2));
}

TEST(ShardedMutation, WholeBankReleaseKeepsIdMappingEraseAndQueriesCorrect) {
  // Regression for the whole-bank release path: compact() erases an
  // emptied bank from banks_, shifting every later bank index. The
  // id -> bank mapping, erase semantics, queries, and a snapshot
  // round-trip must all stay correct for ids both older and newer than
  // the released bank.
  const Data data = make_data(24, 4, 2, 151);
  EngineConfig config;
  config.num_features = 4;
  config.bank_rows = 8;  // Banks: ids [0,8), [8,16), [16,24).
  config.shard_workers = 1;
  auto index = make_index("sharded-euclidean", config);
  index->add(data.rows, data.labels);
  auto& sharded = dynamic_cast<ShardedNnIndex&>(*index);
  ASSERT_EQ(sharded.num_banks(), 3u);
  EXPECT_EQ(sharded.bank_of(3), 0u);
  EXPECT_EQ(sharded.bank_of(12), 1u);
  EXPECT_EQ(sharded.bank_of(20), 2u);

  // Erase the middle bank to empty: it must be released outright.
  for (std::size_t id = 8; id < 16; ++id) EXPECT_TRUE(index->erase(id));
  ASSERT_EQ(sharded.num_banks(), 2u);
  EXPECT_EQ(index->size(), 16u);

  // The mapping re-resolves across the shifted bank indices: older ids
  // stay in bank 0, newer ids now live at bank index 1, released ids map
  // nowhere.
  EXPECT_EQ(sharded.bank_of(3), 0u);
  for (std::size_t id = 8; id < 16; ++id) {
    EXPECT_EQ(sharded.bank_of(id), sharded.num_banks()) << id;
  }
  EXPECT_EQ(sharded.bank_of(20), 1u);

  // Erase semantics across the shift: released ids report "already
  // erased" (never out_of_range, never a mis-mapped live row); older and
  // newer ids still tombstone exactly once.
  EXPECT_FALSE(index->erase(12));
  EXPECT_TRUE(index->erase(2));
  EXPECT_FALSE(index->erase(2));
  EXPECT_TRUE(index->erase(21));
  EXPECT_FALSE(index->erase(21));
  EXPECT_THROW((void)index->erase(24), std::out_of_range);
  EXPECT_EQ(index->size(), 14u);

  // Queries only ever surface surviving ids, identical to a monolithic
  // engine with the same erase history.
  auto monolithic = make_index("euclidean", EngineConfig{});
  monolithic->add(data.rows, data.labels);
  for (std::size_t id : {std::size_t{8},  std::size_t{9},  std::size_t{10},
                         std::size_t{11}, std::size_t{12}, std::size_t{13},
                         std::size_t{14}, std::size_t{15}, std::size_t{2},
                         std::size_t{21}}) {
    ASSERT_TRUE(monolithic->erase(id));
  }
  for (const auto& q : data.queries) {
    expect_identical(index->query_one(q, 14), monolithic->query_one(q, 14),
                     "post-release query");
  }

  // And the state snapshot-restores with the released bank still gone.
  serve::io::Writer writer;
  index->save_state(writer);
  auto restored = make_index("sharded-euclidean", config);
  serve::io::Reader reader{writer.buffer()};
  restored->load_state(reader);
  auto& restored_sharded = dynamic_cast<ShardedNnIndex&>(*restored);
  EXPECT_EQ(restored_sharded.num_banks(), 2u);
  EXPECT_EQ(restored_sharded.bank_of(3), 0u);
  EXPECT_EQ(restored_sharded.bank_of(12), restored_sharded.num_banks());
  EXPECT_EQ(restored_sharded.bank_of(20), 1u);
  EXPECT_FALSE(restored->erase(12));
  for (const auto& q : data.queries) {
    expect_identical(restored->query_one(q, 14), index->query_one(q, 14),
                     "post-release restore");
  }
  // Ids keep growing monotonically past the released bank after restore.
  restored->add(std::span{data.rows}.subspan(0, 2), std::span{data.labels}.subspan(0, 2));
  EXPECT_EQ(restored_sharded.bank_of(24), restored_sharded.num_banks() - 1);
  EXPECT_EQ(restored->size(), 16u);
}

TEST(ShardedMutation, BankOfDistinguishesCompactedIdsInsideASurvivingBank) {
  // bank_of must not report a bank that merely *spans* the id: an id
  // compacted out of a surviving bank's range maps nowhere.
  const Data data = make_data(8, 4, 1, 157);
  ShardedConfig config;
  config.bank_rows = 4;
  config.workers = 1;
  config.compact_dead_fraction = 0.5;
  ShardedNnIndex index{[] { return std::make_unique<SoftwareNnEngine>("euclidean"); },
                       config};
  index.add(data.rows, data.labels);
  // Kill 3 of bank 0's rows; the bank compacts down to survivor id 3.
  EXPECT_TRUE(index.erase(0));
  EXPECT_TRUE(index.erase(1));
  EXPECT_TRUE(index.erase(2));
  ASSERT_EQ(index.stats().compactions, 1u);
  EXPECT_EQ(index.bank_of(3), 0u);
  for (std::size_t id : {std::size_t{0}, std::size_t{1}, std::size_t{2}}) {
    EXPECT_EQ(index.bank_of(id), index.num_banks()) << id;
  }
  EXPECT_EQ(index.bank_of(5), 1u);
}

TEST(ShardedMerge, EqualScoresAcrossBanksResolveToLowerGlobalId) {
  // Bank-boundary tie-break: identical vectors land in different banks,
  // so their matchline conductances tie exactly; the merged ranking must
  // follow the WTA low-index convention on *global* ids.
  const std::vector<float> v{1.0f, 2.0f, 3.0f, 4.0f};
  const std::vector<float> far{9.0f, 9.0f, 9.0f, 9.0f};
  const std::vector<std::vector<float>> rows{v, far, v, far, v, far};
  const std::vector<int> labels{0, 1, 2, 3, 4, 5};
  for (const std::string& key : {std::string{"sharded-mcam3"},
                                 std::string{"sharded-euclidean"}}) {
    EngineConfig config;
    config.num_features = 4;
    config.bank_rows = 2;  // Copies of v at global ids 0, 2, 4 - one per bank.
    auto index = make_index(key, config);
    index->add(rows, labels);
    const QueryResult result = index->query_one(v, 3);
    ASSERT_EQ(result.neighbors.size(), 3u) << key;
    EXPECT_EQ(result.neighbors[0].index, 0u) << key;
    EXPECT_EQ(result.neighbors[1].index, 2u) << key;
    EXPECT_EQ(result.neighbors[2].index, 4u) << key;
  }
}

TEST(ShardedMerge, RankBySensingTieBreaksToLowerIndexWithAndWithoutMask) {
  // The primitive under the merge: ascending scores, exact ties to the
  // lower row index (argmin/WTA convention), tombstones skipped.
  const std::vector<double> scores{0.7, 0.3, 0.3, 0.1, 0.7};
  const std::vector<std::size_t> order = top_k_ascending(scores, 5);
  EXPECT_EQ(order, (std::vector<std::size_t>{3, 1, 2, 0, 4}));

  const std::vector<std::uint8_t> mask{1, 0, 1, 0, 1};
  const std::vector<std::size_t> masked = cam::rank_by_sensing(
      scores, mask, cam::SensingMode::kIdealSum, circuit::MatchlineParams{}, 4, 0.0, 5);
  EXPECT_EQ(masked, (std::vector<std::size_t>{2, 0, 4}));
}

TEST(ShardedQuery, ParallelFanOutMatchesSingleWorker) {
  const Data data = make_data(60, 6, 4, 113);
  EngineConfig config;
  config.num_features = 6;
  config.bank_rows = 7;
  config.shard_workers = 1;
  auto sequential = make_index("sharded-mcam2", config);
  config.shard_workers = 5;
  auto parallel = make_index("sharded-mcam2", config);
  sequential->add(data.rows, data.labels);
  parallel->add(data.rows, data.labels);
  for (const auto& q : data.queries) {
    expect_identical(parallel->query_one(q, 9), sequential->query_one(q, 9),
                     "worker count");
  }
  // And through the batched executor, the serving path.
  const BatchExecutor executor{BatchOptions{2, 1}};
  const auto batched = executor.run(*parallel, data.queries, 9);
  for (std::size_t i = 0; i < data.queries.size(); ++i) {
    expect_identical(batched[i], sequential->query_one(data.queries[i], 9), "batched");
  }
}

TEST(ShardedTelemetry, AggregatesAcrossBanks) {
  const Data data = make_data(30, 5, 1, 127);
  EngineConfig config;
  config.num_features = 5;
  auto monolithic = make_index("mcam3", config);
  monolithic->add(data.rows, data.labels);
  const QueryTelemetry mono = monolithic->query_one(data.queries[0], 3).telemetry;
  EXPECT_EQ(mono.banks_searched, 1u);
  EXPECT_EQ(mono.candidates, 30u);

  config.bank_rows = 10;
  auto sharded = make_index("sharded-mcam3", config);
  sharded->add(data.rows, data.labels);
  const QueryTelemetry agg = sharded->query_one(data.queries[0], 3).telemetry;
  EXPECT_EQ(agg.banks_searched, 3u);
  EXPECT_EQ(agg.candidates, 30u);        // Summed live candidates.
  EXPECT_EQ(agg.sense_events, 9u);       // Each bank senses its own top-3.
  EXPECT_GT(agg.energy_j, 0.0);
  // The array energy model is linear in rows, so tiling is energy-neutral
  // for the search itself (the win is latency and feasibility).
  EXPECT_NEAR(agg.energy_j, mono.energy_j, 1e-9 * mono.energy_j);
}

TEST(ShardedCapacity, ArraysEnforceMaxRows) {
  cam::McamArrayConfig mcam_config;
  mcam_config.max_rows = 2;
  cam::McamArray array{mcam_config};
  const std::vector<std::uint16_t> row{1, 2, 3};
  array.add_row(row);
  array.add_row(row);
  EXPECT_TRUE(array.full());
  EXPECT_THROW((void)array.add_row(row), std::length_error);
  EXPECT_TRUE(array.invalidate_row(0));
  EXPECT_FALSE(array.invalidate_row(0));
  EXPECT_EQ(array.num_valid(), 1u);
  // Tombstoning frees no physical slot - only reprogramming (clear) does.
  EXPECT_THROW((void)array.add_row(row), std::length_error);
  EXPECT_EQ(array.k_nearest(row, 5), (std::vector<std::size_t>{1}));

  cam::TcamArrayConfig tcam_config;
  tcam_config.max_rows = 1;
  cam::TcamArray tcam{tcam_config};
  const std::vector<std::uint8_t> bits{1, 0, 1};
  tcam.add_row_bits(bits);
  EXPECT_THROW((void)tcam.add_row_bits(bits), std::length_error);
  EXPECT_TRUE(tcam.invalidate_row(0));
  EXPECT_EQ(tcam.num_valid(), 0u);
  EXPECT_THROW((void)tcam.nearest(bits), std::logic_error);
}

TEST(ShardedCapacity, MonolithicEngineRefusesToOutgrowOneBank) {
  // bank_rows on a *monolithic* key bounds the physical array: the one
  // thing real hardware cannot do is grow past its matchline.
  const Data data = make_data(10, 4, 1, 131);
  EngineConfig config;
  config.num_features = 4;
  config.bank_rows = 8;
  auto index = make_index("mcam3", config);
  EXPECT_THROW(index->add(data.rows, data.labels), std::length_error);
  EXPECT_EQ(index->size(), 0u);  // All-or-nothing: nothing was programmed.
  const std::span<const std::vector<float>> rows{data.rows};
  const std::span<const int> labels{data.labels};
  index->add(rows.subspan(0, 8), labels.subspan(0, 8));
  EXPECT_THROW(index->add(rows.subspan(8), labels.subspan(8)), std::length_error);
  EXPECT_EQ(index->size(), 8u);
}

TEST(EngineSpec, ParsesOverridesAndRejectsUnknownKeys) {
  const EngineSpec spec = parse_engine_spec("mcam:bits=2,bank_rows=64,shard_workers=3");
  EXPECT_EQ(spec.name, "mcam");
  EXPECT_EQ(spec.config.mcam_bits, 2u);
  EXPECT_EQ(spec.config.bank_rows, 64u);
  EXPECT_EQ(spec.config.shard_workers, 3u);

  EngineConfig base;
  base.seed = 42;
  const EngineSpec inherits = parse_engine_spec("tcam-lsh:lsh_bits=128", base);
  EXPECT_EQ(inherits.config.seed, 42u);  // Base config passes through.
  EXPECT_EQ(inherits.config.lsh_bits, 128u);

  const EngineSpec sensing = parse_engine_spec("mcam:sensing=timing,sense_clock_period=1e-9");
  EXPECT_EQ(sensing.config.sensing, cam::SensingMode::kMatchlineTiming);
  EXPECT_DOUBLE_EQ(sensing.config.sense_clock_period, 1e-9);

  try {
    (void)parse_engine_spec("mcam:flux_capacitor=1");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("unknown key 'flux_capacitor'"),
              std::string::npos);
    EXPECT_NE(std::string{error.what()}.find("known keys:"), std::string::npos);
    EXPECT_NE(std::string{error.what()}.find("bank_rows"), std::string::npos);
  }
  EXPECT_THROW((void)parse_engine_spec("mcam:bits=banana"), std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec("mcam:bits"), std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec("mcam:"), std::invalid_argument);
  EXPECT_THROW((void)parse_engine_spec(":bits=2"), std::invalid_argument);
}

TEST(EngineSpec, RejectsDuplicateKeysAndEmptyValuesNamingTheSpec) {
  // Last-write-wins on a repeated key (or a silently empty value) is
  // almost always a typo in a serving config: fail loudly, and name the
  // offending spec string in the error so it is diagnosable from a log.
  try {
    (void)parse_engine_spec("mcam:bits=2,bank_rows=8,bits=3");
    FAIL() << "duplicate key accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("duplicate key 'bits'"), std::string::npos) << what;
    EXPECT_NE(what.find("'mcam:bits=2,bank_rows=8,bits=3'"), std::string::npos) << what;
  }
  try {
    (void)parse_engine_spec("mcam:bits=");
    FAIL() << "empty value accepted";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("empty value for key 'bits'"), std::string::npos) << what;
    EXPECT_NE(what.find("'mcam:bits='"), std::string::npos) << what;
  }
  // The spec string is also named for malformed items and unknown keys.
  try {
    (void)parse_engine_spec("mcam:flux=1");
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string{error.what()}.find("in spec 'mcam:flux=1'"), std::string::npos);
  }
}

TEST(EngineSpec, FactoryCreatesFromSpecStrings) {
  const Data data = make_data(20, 4, 2, 137);
  EngineConfig config;
  config.num_features = 4;
  auto index = make_index("sharded-mcam:bits=2,bank_rows=8,shard_workers=2", config);
  index->add(data.rows, data.labels);
  EXPECT_NE(index->name().find("2-bit MCAM"), std::string::npos);
  EXPECT_NE(index->name().find("3 banks"), std::string::npos);
  EXPECT_EQ(index->query_one(data.queries[0], 3).telemetry.banks_searched, 3u);
  EXPECT_THROW((void)make_index("mcam:nope=1", config), std::invalid_argument);
}

TEST(ShardedMann, FeatureMemoryExercisesBankAllocationAndForgetting) {
  // The MANN layer over a sharded memory: shots stream into banks, stale
  // shots are forgotten (tombstoned), lookups majority-vote as before.
  const Data data = make_data(24, 6, 3, 139);
  ShardedConfig config;
  config.bank_rows = 8;
  config.workers = 1;
  auto sharded = std::make_unique<ShardedNnIndex>(
      [] { return std::make_unique<SoftwareNnEngine>("euclidean"); }, config);
  const ShardedNnIndex* raw = sharded.get();
  mann::FeatureMemory memory{std::move(sharded), mann::StoragePolicy::kAllShots};

  const std::span<const std::vector<float>> rows{data.rows};
  const std::span<const int> labels{data.labels};
  memory.store(rows.subspan(0, 16), labels.subspan(0, 16));
  EXPECT_EQ(raw->num_banks(), 2u);
  memory.append(rows.subspan(16), labels.subspan(16));
  EXPECT_EQ(raw->num_banks(), 3u);
  EXPECT_EQ(memory.size(), 24u);

  const QueryResult hit = memory.retrieve(data.queries[0], 3);
  EXPECT_EQ(hit.telemetry.banks_searched, 3u);
  EXPECT_TRUE(memory.forget(hit.neighbors.front().index));
  EXPECT_EQ(memory.size(), 23u);
  const QueryResult after = memory.retrieve(data.queries[0], 3);
  EXPECT_NE(after.neighbors.front().index, hit.neighbors.front().index);
  EXPECT_EQ(memory.lookup(data.queries[0], 3), after.label);

  // Prototype memories cannot stream or forget shots.
  mann::FeatureMemory prototypes{std::make_unique<SoftwareNnEngine>("euclidean"),
                                 mann::StoragePolicy::kPrototype};
  prototypes.store(rows.subspan(0, 8), labels.subspan(0, 8));
  EXPECT_THROW(prototypes.append(rows.subspan(8, 2), labels.subspan(8, 2)),
               std::logic_error);
  EXPECT_THROW((void)prototypes.forget(0), std::logic_error);
}

TEST(ShardedLifecycle, QueryBeforeAddAndClearResetsCalibration) {
  EngineConfig config;
  config.num_features = 4;
  config.bank_rows = 4;
  auto index = make_index("sharded-mcam3", config);
  EXPECT_THROW((void)index->query_one(std::vector<float>{1, 2, 3, 4}, 1),
               std::logic_error);
  const Data near_origin = make_data(8, 4, 1, 149);
  index->add(near_origin.rows, near_origin.labels);
  // clear() drops banks *and* the stored calibration rows: the next add
  // recalibrates, as the monolithic engines do.
  index->clear();
  EXPECT_EQ(index->size(), 0u);
  Data shifted = near_origin;
  for (auto& row : shifted.rows) {
    for (auto& v : row) v += 100.0f;
  }
  index->add(shifted.rows, shifted.labels);
  EXPECT_EQ(index->size(), 8u);
  EXPECT_EQ(index->query_one(shifted.queries[0], 1).neighbors.size(), 1u);
}

}  // namespace
}  // namespace mcam::search
