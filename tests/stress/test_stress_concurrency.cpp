// Race-hunting stress suite: barrier-synchronized multi-thread tortures
// over every concurrent subsystem, designed to maximize the interleavings
// ThreadSanitizer can observe. The assertions here are deliberately
// coarse (statuses legal, counters balance at quiescence, final state
// deterministic) - the sharp assertor is TSan itself, which the CI job
// runs over this whole binary with MCAM_STRESS_LONG=1.
//
// Profiles: the default (short) profile bounds every case to seconds so
// plain CI and local ctest stay fast; MCAM_STRESS_LONG=1 multiplies the
// iteration counts for the TSan job. MCAM_STRESS_THREADS overrides the
// torture width; at 1 every case degrades to a deterministic
// single-thread run that still executes all of its assertions (nothing is
// skipped on 1-core hosts - see the ResolveWorkerCount cases pinning that
// contract).
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "search/batch.hpp"
#include "search/factory.hpp"
#include "search/sharded.hpp"
#include "serve/service.hpp"
#include "store/manager.hpp"
#include "util/rng.hpp"
#include "util/tsan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace mcam {
namespace {

// --- Profile knobs ----------------------------------------------------------

bool long_profile() {
  static const bool value = [] {
    const char* raw = std::getenv("MCAM_STRESS_LONG");
    return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
  }();
  return value;
}

/// Iteration count for one torture: `base` in the short profile, 10x under
/// MCAM_STRESS_LONG=1 (the TSan CI job's profile).
std::size_t iterations(std::size_t base) { return long_profile() ? base * 10 : base; }

/// Torture width. Deliberately more threads than cores - the point is
/// interleavings, not throughput - resolved through the same
/// resolve_worker_count contract the production pools use, so a 1-core
/// host still gets >= 2 threads unless MCAM_STRESS_THREADS=1 explicitly
/// asks for the deterministic single-thread degrade.
std::size_t stress_threads() {
  static const std::size_t value = [] {
    const char* raw = std::getenv("MCAM_STRESS_THREADS");
    if (raw != nullptr) {
      const long parsed = std::strtol(raw, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    return std::max<std::size_t>(
        std::size_t{4}, search::resolve_worker_count(0, std::thread::hardware_concurrency()));
  }();
  return value;
}

/// Runs `body(thread_index)` on `count` threads released together through
/// a barrier; with count == 1 the body runs inline on the calling thread,
/// so single-thread runs stay deterministic AND still assert.
void run_torture(std::size_t count, const std::function<void(std::size_t)>& body) {
  ASSERT_GE(count, 1u);
  if (count == 1) {
    body(0);
    return;
  }
  std::barrier gate(static_cast<std::ptrdiff_t>(count));
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      body(t);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

// --- Shared fixtures --------------------------------------------------------

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.1 + (i % 3) * 0.3, 0.5));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 3);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 3)));
  }
  return data;
}

// --- resolve_worker_count edge cases (the 1-core degrade contract) ----------

TEST(StressConfig, ResolveWorkerCountEdgeCases) {
  using search::resolve_worker_count;
  // Explicit requests always win, even absurd ones on 1-core hosts.
  EXPECT_EQ(resolve_worker_count(3, 1), 3u);
  EXPECT_EQ(resolve_worker_count(7, 0), 7u);
  EXPECT_EQ(resolve_worker_count(1, 64), 1u);
  // The default clamps to 1 when the host reports <= 1 core (or cannot
  // report at all) - never 0, so pools never end up threadless.
  EXPECT_EQ(resolve_worker_count(0, 0), 1u);
  EXPECT_EQ(resolve_worker_count(0, 1), 1u);
  EXPECT_EQ(resolve_worker_count(0, 8), 8u);
  EXPECT_GE(search::default_worker_count(), 1u);
}

TEST(StressConfig, TortureWidthNeverZeroAndSingleThreadStillAsserts) {
  EXPECT_GE(stress_threads(), 1u);
  // The degrade contract: a width-1 torture runs the body inline exactly
  // once - assertions execute rather than being skipped.
  std::size_t runs = 0;
  run_torture(1, [&](std::size_t t) {
    EXPECT_EQ(t, 0u);
    ++runs;
  });
  EXPECT_EQ(runs, 1u);
}

TEST(StressConfig, BatchExecutorSingleThreadDegradeIsBitIdentical) {
  // On 1-core hosts the executor resolves to inline execution; the answer
  // must not depend on which path ran.
  const Data data = make_data(48, 8, 16, 11);
  const auto index = search::make_index("cosine");
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  search::BatchOptions sequential;
  sequential.num_threads = 1;
  search::BatchOptions parallel;
  parallel.num_threads = 4;
  parallel.min_shard_size = 1;
  const auto a = search::BatchExecutor(sequential).run(*index, data.queries, 3);
  const auto b = search::BatchExecutor(parallel).run(*index, data.queries, 3);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].neighbors.size(), b[i].neighbors.size());
    EXPECT_EQ(a[i].label, b[i].label);
    for (std::size_t j = 0; j < a[i].neighbors.size(); ++j) {
      EXPECT_EQ(a[i].neighbors[j].index, b[i].neighbors[j].index);
      EXPECT_EQ(a[i].neighbors[j].distance, b[i].neighbors[j].distance);
    }
  }
}

// --- QueryService tortures --------------------------------------------------

TEST(StressQueryService, SubmitMutateDrainTorture) {
  const Data data = make_data(64, 8, 8, 21);
  const auto index = search::make_index("cosine");
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  serve::QueryServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.cache_capacity = 16;
  config.trace_sample = 1;  // Always-on tracing: span recording joins the torture.
  serve::QueryService service(*index, config);

  const std::size_t submitters = stress_threads();
  const std::size_t iters = iterations(60);
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> rejected{0};

  // One mutator rides along inside the torture (thread 0): adds then
  // erases rows through the service, exercising exclusive-lock + cache
  // invalidation against the submit/execute shared paths.
  run_torture(submitters + 1, [&](std::size_t t) {
    if (t == 0) {
      std::size_t next_erase = 0;
      for (std::size_t i = 0; i < iters / 4; ++i) {
        const std::vector<std::vector<float>> row{data.rows[i % data.rows.size()]};
        const std::vector<int> label{data.labels[i % data.labels.size()]};
        service.add(row, label);
        if (i % 2 == 0) service.erase(next_erase++);
      }
      return;
    }
    std::vector<std::future<serve::QueryResponse>> pending;
    for (std::size_t i = 0; i < iters; ++i) {
      pending.push_back(
          service.submit(data.queries[(t + i) % data.queries.size()], 1 + i % 5));
      if (pending.size() >= 8) {
        for (auto& f : pending) {
          const serve::QueryResponse r = f.get();
          if (r.status == serve::RequestStatus::kOk) {
            EXPECT_FALSE(r.result.neighbors.empty());
            ++ok;
          } else {
            ASSERT_EQ(r.status, serve::RequestStatus::kRejected);
            ++rejected;
          }
        }
        pending.clear();
      }
    }
    for (auto& f : pending) {
      const serve::QueryResponse r = f.get();
      if (r.status == serve::RequestStatus::kOk) {
        ++ok;
      } else {
        ++rejected;
      }
    }
  });

  service.stop();
  const serve::ServiceStats stats = service.stats();
  // Quiescence balance: everything accepted was drained to a terminal
  // outcome, nothing is left queued, rejections were reported not dropped.
  EXPECT_EQ(stats.accepted, stats.completed + stats.failed);
  EXPECT_EQ(stats.queue_depth, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, rejected.load());
  EXPECT_EQ(ok.load() + rejected.load(), submitters * iters);
  // Post-stop submits answer kShutdown, never hang.
  const serve::QueryResponse after = service.query_one(data.queries[0], 1);
  EXPECT_EQ(after.status, serve::RequestStatus::kShutdown);
}

TEST(StressQueryService, StopRacesInFlightSubmits) {
  const Data data = make_data(32, 8, 4, 31);
  const std::size_t rounds = iterations(6);
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto index = search::make_index("cosine");
    index->calibrate(data.rows);
    index->add(data.rows, data.labels);
    serve::QueryServiceConfig config;
    config.workers = 2;
    config.queue_capacity = 16;
    auto service = std::make_unique<serve::QueryService>(*index, config);

    // Thread 0 stops the service while the rest are mid-submit: every
    // future must still resolve to a legal terminal status.
    run_torture(stress_threads() + 1, [&](std::size_t t) {
      if (t == 0) {
        service->stop();
        return;
      }
      for (std::size_t i = 0; i < 20; ++i) {
        const serve::QueryResponse r =
            service->query_one(data.queries[i % data.queries.size()], 2);
        ASSERT_TRUE(r.status == serve::RequestStatus::kOk ||
                    r.status == serve::RequestStatus::kRejected ||
                    r.status == serve::RequestStatus::kShutdown)
            << static_cast<int>(r.status);
      }
    });
    const serve::ServiceStats stats = service->stats();
    EXPECT_EQ(stats.accepted, stats.completed + stats.failed);
    EXPECT_EQ(stats.queue_depth, 0u);
  }
}

// --- CollectionManager tortures ---------------------------------------------

TEST(StressCollectionManager, MultiTenantTorture) {
  const Data data = make_data(48, 8, 8, 41);
  store::ManagerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.collection_queue_cap = 32;
  config.trace_sample = 1;
  store::CollectionManager manager(config);

  const std::vector<std::string> tenants{"alpha", "beta", "gamma"};
  std::vector<std::vector<std::string>> tags(data.rows.size());
  for (std::size_t r = 0; r < tags.size(); ++r) {
    tags[r] = {r % 2 == 0 ? "team=red" : "team=blue"};
  }
  for (const std::string& tenant : tenants) {
    manager.create_collection(tenant, "cosine");
    manager.calibrate(tenant, data.rows);
    manager.add(tenant, data.rows, data.labels, tags);
  }

  const std::filesystem::path save_dir =
      std::filesystem::temp_directory_path() / "mcam_stress_manager_save";
  std::filesystem::remove_all(save_dir);

  const std::size_t iters = iterations(50);
  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> rejected{0};
  std::atomic<std::size_t> shutdown{0};

  // Threads 0..2 are the antagonists: a mutator (add/erase/expire), a
  // saver (whole-fleet snapshots racing queries), and a churner
  // (drop + recreate one tenant so in-flight queries resolve kShutdown).
  run_torture(stress_threads() + 3, [&](std::size_t t) {
    if (t == 0) {
      for (std::size_t i = 0; i < iters / 4; ++i) {
        const std::string& tenant = tenants[i % 2];  // Not the churn tenant.
        const std::vector<std::vector<float>> row{data.rows[i % data.rows.size()]};
        const std::vector<int> label{data.labels[i % data.labels.size()]};
        manager.add(tenant, row, label);
        manager.erase(tenant, i % data.rows.size());
        if (i % 8 == 0) manager.expire_all(i);
      }
      return;
    }
    if (t == 1) {
      for (std::size_t i = 0; i < iterations(3); ++i) {
        try {
          manager.save(save_dir.string());
        } catch (const std::invalid_argument&) {
          // The churner dropped a collection mid-save; legal and reported.
        }
      }
      return;
    }
    if (t == 2) {
      for (std::size_t i = 0; i < iterations(8); ++i) {
        manager.drop_collection("gamma");
        manager.create_collection("gamma", "cosine");
        manager.calibrate("gamma", data.rows);
        manager.add("gamma", data.rows, data.labels);
      }
      return;
    }
    for (std::size_t i = 0; i < iters; ++i) {
      const std::string& tenant = tenants[(t + i) % tenants.size()];
      store::Predicate predicate;
      if (i % 3 == 0) predicate = store::Predicate::tag("team=red");
      try {
        const store::StoreResponse r = manager.query_one(
            tenant, data.queries[i % data.queries.size()], 1 + i % 4, predicate);
        switch (r.status) {
          case serve::RequestStatus::kOk:
            ++ok;
            break;
          case serve::RequestStatus::kRejected:
            ++rejected;
            break;
          case serve::RequestStatus::kShutdown:
            ++shutdown;
            break;
          case serve::RequestStatus::kFailed:
            // Legal failures only: the zero-match predicate throw (the
            // mutator can erase every "team=red" row and the churner
            // recreates gamma untagged) and the empty-index throw (a query
            // lands in the churner's window between create_collection and
            // add, when gamma exists but holds no rows yet). Any other
            // failure is a real bug.
            EXPECT_TRUE(r.error.find("no live row matches") != std::string::npos ||
                        r.error.find("before add") != std::string::npos)
                << "unexpected kFailed: " << r.error;
            break;
        }
      } catch (const std::invalid_argument&) {
        // Unknown collection: the churner's drop raced our submit.
      }
    }
  });

  EXPECT_GT(ok.load(), 0u);
  for (const std::string& tenant : manager.collection_names()) {
    const serve::ServiceStats stats = manager.stats(tenant);
    EXPECT_EQ(stats.accepted, stats.completed + stats.failed) << tenant;
    EXPECT_EQ(stats.queue_depth, 0u) << tenant;
  }
  manager.stop();
  std::filesystem::remove_all(save_dir);
}

TEST(StressCollectionManager, ResolvedFutureExcludesTaskFromQueueDepth) {
  // Regression for the PR 8 race: the worker decremented the tenant's
  // in-flight counter AFTER fulfilling the promise, so a caller observing
  // its future resolved could still see the task in stats().queue_depth.
  const Data data = make_data(16, 4, 1, 51);
  store::ManagerConfig config;
  config.workers = 1;
  store::CollectionManager manager(config);
  manager.create_collection("only", "cosine");
  manager.calibrate("only", data.rows);
  manager.add("only", data.rows, data.labels);

  for (std::size_t i = 0; i < iterations(200); ++i) {
    const store::StoreResponse r = manager.query_one("only", data.queries[0], 1);
    ASSERT_EQ(r.status, serve::RequestStatus::kOk);
    // The promise resolved, so the happens-before chain through
    // future.get() must make the decrement visible here.
    EXPECT_EQ(manager.stats("only").queue_depth, 0u) << "iteration " << i;
  }
}

// --- Sharded fan-out with concurrent compaction -----------------------------

TEST(StressSharded, FanoutQueriesRaceCompaction) {
  const Data data = make_data(96, 8, 8, 61);
  search::EngineConfig config;
  config.bank_rows = 16;
  config.shard_workers = 4;

  const auto build = [&] {
    auto index = search::make_index("sharded-cosine", config);
    index->calibrate(data.rows);
    index->add(data.rows, data.labels);
    return index;
  };
  const auto index = build();

  // The NnIndex contract makes mutation racing query undefined; the
  // production stack serializes through QueryService's shared_mutex. The
  // torture reproduces exactly that discipline so TSan checks that the
  // lock is SUFFICIENT for the bank fan-out + compaction internals -
  // worker threads spawned under the shared lock, banks rebuilt in place
  // under the exclusive one.
  std::shared_mutex index_mutex;  // lock-order: leaf (no lock acquired under it).

  // Single writer => the mutation history is deterministic; record it so
  // the final state can be replayed and compared bit-identically.
  std::vector<std::size_t> erased;
  const std::size_t readers = stress_threads();
  const std::size_t iters = iterations(40);

  run_torture(readers + 1, [&](std::size_t t) {
    if (t == 0) {
      // Erase two whole banks' worth of rows plus stragglers: drives the
      // dead fraction past the compaction threshold repeatedly.
      for (std::size_t i = 0; i < 40; ++i) {
        std::unique_lock lock(index_mutex);
        if (index->erase(i)) erased.push_back(i);
      }
      return;
    }
    for (std::size_t i = 0; i < iters; ++i) {
      std::shared_lock lock(index_mutex);
      const auto result =
          index->query_one(data.queries[(t + i) % data.queries.size()], 3);
      ASSERT_FALSE(result.neighbors.empty());
      for (const auto& neighbor : result.neighbors) {
        ASSERT_LT(neighbor.index, data.rows.size());
      }
    }
  });

  // Replay the recorded history on a fresh index: the torture's final
  // answers must be bit-identical (cosine is noise-free/deterministic).
  const auto replay = build();
  for (const std::size_t id : erased) ASSERT_TRUE(replay->erase(id));
  ASSERT_EQ(index->size(), replay->size());
  for (const auto& query : data.queries) {
    const auto a = index->query_one(query, 5);
    const auto b = replay->query_one(query, 5);
    ASSERT_EQ(a.neighbors.size(), b.neighbors.size());
    EXPECT_EQ(a.label, b.label);
    for (std::size_t j = 0; j < a.neighbors.size(); ++j) {
      EXPECT_EQ(a.neighbors[j].index, b.neighbors[j].index);
      EXPECT_EQ(a.neighbors[j].distance, b.neighbors[j].distance);
    }
  }
}

TEST(StressSharded, ConcurrentBatchExecutorsShareOneIndex) {
  const Data data = make_data(64, 8, 24, 71);
  search::EngineConfig config;
  config.bank_rows = 16;
  config.shard_workers = 2;
  const auto index = search::make_index("sharded-cosine", config);
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  // Reference answers, sequentially.
  search::BatchOptions sequential;
  sequential.num_threads = 1;
  const auto reference = search::BatchExecutor(sequential).run(*index, data.queries, 3);

  // Nested parallelism: several BatchExecutors (each spawning shard
  // workers through the index's fan-out) share the const index.
  search::BatchOptions nested;
  nested.num_threads = 2;
  nested.min_shard_size = 1;
  run_torture(stress_threads(), [&](std::size_t) {
    for (std::size_t round = 0; round < iterations(4); ++round) {
      const auto results = search::BatchExecutor(nested).run(*index, data.queries, 3);
      ASSERT_EQ(results.size(), reference.size());
      for (std::size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].neighbors.size(), reference[i].neighbors.size());
        for (std::size_t j = 0; j < results[i].neighbors.size(); ++j) {
          ASSERT_EQ(results[i].neighbors[j].index, reference[i].neighbors[j].index);
          ASSERT_EQ(results[i].neighbors[j].distance,
                    reference[i].neighbors[j].distance);
        }
      }
    }
  });
}

// --- Metrics registry tortures ----------------------------------------------
// Compiled out with the obs layer: under MCAM_OBS_DISABLED the instruments
// are no-op stubs and there is no concurrency left to torture.
#ifndef MCAM_OBS_DISABLED

TEST(StressMetrics, ResolveVsIncrementVsSnapshotTorture) {
  obs::Registry& registry = obs::registry();
  const std::size_t threads = stress_threads();
  const std::size_t iters = iterations(400);

  std::atomic<bool> done{false};
  // A dedicated snapshotter races resolution and increments; counter
  // values it sees must be monotone (counters never go backward).
  std::thread snapshotter([&] {
    std::uint64_t last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = obs::snapshot();
      for (const auto& counter : snap.counters) {
        if (counter.name == "stress_resolve_counter" && counter.labels.empty()) {
          EXPECT_GE(counter.value, last);
          last = counter.value;
        }
      }
    }
  });

  run_torture(threads, [&](std::size_t t) {
    // Re-resolving on every iteration is the torture: the lock-sharded
    // resolve path races other resolvers, the snapshotter, and the
    // incrementing handles.
    for (std::size_t i = 0; i < iters; ++i) {
      const obs::Counter counter = registry.counter("stress_resolve_counter");
      counter.inc();
      const obs::Counter labeled = registry.counter(
          "stress_labeled_counter", {{"thread", std::to_string(t % 3)}});
      labeled.inc(2);
      const obs::Gauge gauge = registry.gauge("stress_gauge");
      gauge.set(static_cast<double>(i));
      const obs::Histogram histogram =
          registry.histogram("stress_histogram", {1.0, 10.0, 100.0});
      histogram.observe(static_cast<double>(i % 200));
    }
  });
  done.store(true, std::memory_order_release);
  snapshotter.join();

  // Quiescent totals are exact.
  EXPECT_EQ(registry.counter("stress_resolve_counter").value(), threads * iters);
  std::uint64_t labeled_total = 0;
  for (int l = 0; l < 3; ++l) {
    labeled_total +=
        registry.counter("stress_labeled_counter", {{"thread", std::to_string(l)}})
            .value();
  }
  EXPECT_EQ(labeled_total, 2 * threads * iters);
  EXPECT_EQ(registry.histogram("stress_histogram", {1.0, 10.0, 100.0}).count(),
            threads * iters);
}

TEST(StressMetrics, HistogramSnapshotDuringIncrementsPinnedContract) {
  // Pins the documented snapshot()-under-concurrency contract
  // (obs/metrics.hpp): each field is individually torn-free and monotone,
  // cross-field consistency is NOT guaranteed mid-flight, and a quiescent
  // snapshot is exact.
  obs::Registry& registry = obs::registry();
  const std::vector<double> bounds{0.5, 1.5, 2.5};
  const obs::Histogram histogram = registry.histogram("stress_pin_histogram", bounds);
  const std::size_t threads = stress_threads();
  const std::size_t iters = iterations(500);

  std::atomic<bool> done{false};
  std::thread snapshotter([&] {
    std::uint64_t last_count = 0;
    while (!done.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = obs::snapshot();
      for (const auto& sample : snap.histograms) {
        if (sample.name != "stress_pin_histogram") continue;
        // Monotone per field; never more observations than the quiescent
        // total. (No bucket-sum == count assertion: the relaxed fields
        // are documented as individually- not jointly-consistent.)
        EXPECT_GE(sample.count, last_count);
        EXPECT_LE(sample.count, threads * iters);
        last_count = sample.count;
      }
    }
  });

  run_torture(threads, [&](std::size_t t) {
    for (std::size_t i = 0; i < iters; ++i) {
      histogram.observe(static_cast<double>((t + i) % 4));  // 0,1,2,3 -> all buckets.
    }
  });
  done.store(true, std::memory_order_release);
  snapshotter.join();

  // Quiescent exactness: count, bucket totals, and sum all agree.
  const obs::MetricsSnapshot snap = obs::snapshot();
  bool found = false;
  for (const auto& sample : snap.histograms) {
    if (sample.name != "stress_pin_histogram") continue;
    found = true;
    EXPECT_EQ(sample.count, threads * iters);
    std::uint64_t bucket_total = 0;
    for (const std::uint64_t c : sample.counts) bucket_total += c;
    EXPECT_EQ(bucket_total, sample.count);
  }
  EXPECT_TRUE(found);
}

// --- Trace layer tortures ---------------------------------------------------

TEST(StressTrace, SinkRingContention) {
  obs::TraceSink sink(64);
  const std::size_t threads = stress_threads();
  const std::size_t per_thread = iterations(300);

  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::vector<obs::TraceRecord> recent = sink.recent();
      EXPECT_LE(recent.size(), 64u);
      for (std::size_t i = 1; i < recent.size(); ++i) {
        EXPECT_LT(recent[i - 1].id, recent[i].id);  // Oldest-first, unique ids.
      }
      (void)sink.to_jsonl();
    }
  });

  run_torture(threads, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_thread; ++i) {
      obs::Trace trace("stress.sink");
      obs::TraceSpan span(&trace, t % 2 == 0 ? "even" : "odd");
      span.note("i", static_cast<double>(i));
      span.close();
      sink.record(trace.finish());
    }
  });
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(sink.recorded_total(), threads * per_thread);
  const std::vector<obs::TraceRecord> recent = sink.recent();
  EXPECT_EQ(recent.size(), std::min<std::size_t>(64, threads * per_thread));
  EXPECT_EQ(recent.back().id, threads * per_thread);
}

TEST(StressTrace, SamplerSharedCounterIsExact) {
  // The sampler's single relaxed fetch_add distributes "every Nth" across
  // threads; the TOTAL number of sampled calls is exact regardless of
  // interleaving: |{i in [0, total) : i % every == 0}|.
  constexpr std::size_t kEvery = 7;
  obs::TraceSampler sampler(kEvery);
  const std::size_t threads = stress_threads();
  const std::size_t per_thread = iterations(1000);
  std::atomic<std::size_t> sampled{0};

  run_torture(threads, [&](std::size_t) {
    for (std::size_t i = 0; i < per_thread; ++i) {
      if (sampler.should_sample()) sampled.fetch_add(1);
    }
  });

  const std::size_t total = threads * per_thread;
  EXPECT_EQ(sampled.load(), (total + kEvery - 1) / kEvery);
}

TEST(StressTrace, ConcurrentSpansOnOneTrace) {
  // The sharded fan-out records bank spans from many worker threads onto
  // one Trace; this is the distilled version.
  obs::Trace trace("stress.fanout");
  const std::size_t threads = stress_threads();
  const std::size_t per_thread = iterations(200);

  run_torture(threads, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_thread; ++i) {
      obs::TraceSpan span(&trace, "bank-query");
      span.note("bank", static_cast<double>(t));
      span.close();
    }
  });

  const obs::TraceRecord record = trace.finish();
  EXPECT_EQ(record.spans.size(), threads * per_thread);
  for (const obs::SpanRecord& span : record.spans) {
    EXPECT_GE(span.start_ms, 0.0);
    EXPECT_GE(span.elapsed_ms, 0.0);
  }
}

#endif  // MCAM_OBS_DISABLED

}  // namespace
}  // namespace mcam
