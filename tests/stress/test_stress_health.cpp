// Health-monitoring stress: canary re-execution and device scrubbing
// racing live queries, adds, erases, and bank compaction. Like the rest
// of the stress suite, the sharp assertor is TSan (the CI job runs this
// binary with MCAM_STRESS_LONG=1); the inline assertions pin the two
// logical invariants that a race would corrupt silently:
//   * canary accounting balances at quiescence
//     (sampled == executed + stale + dropped, estimates in range);
//   * canary ground truth NEVER observes a tombstoned row - erased ids
//     must not appear in any exact result, no matter how the re-execution
//     interleaves with the eraser (query_subset's contract under the
//     owner's lock discipline).
#include "obs/health/health.hpp"
#include "search/batch.hpp"
#include "search/factory.hpp"
#include "serve/service.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <barrier>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <future>
#include <mutex>
#include <numeric>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

namespace mcam {
namespace {

// With MCAM_OBS_DISABLED the canary/monitor are inert stubs (covered by
// test_health's stub suite); there is nothing concurrent to torture, so
// the whole file - helpers included, to stay -Wunused-function-clean -
// compiles away.
#ifndef MCAM_OBS_DISABLED

// --- Profile knobs (the test_stress_concurrency contract) -------------------

bool long_profile() {
  static const bool value = [] {
    const char* raw = std::getenv("MCAM_STRESS_LONG");
    return raw != nullptr && raw[0] != '\0' && raw[0] != '0';
  }();
  return value;
}

std::size_t iterations(std::size_t base) { return long_profile() ? base * 10 : base; }

std::size_t stress_threads() {
  static const std::size_t value = [] {
    const char* raw = std::getenv("MCAM_STRESS_THREADS");
    if (raw != nullptr) {
      const long parsed = std::strtol(raw, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    return std::max<std::size_t>(
        std::size_t{4}, search::resolve_worker_count(0, std::thread::hardware_concurrency()));
  }();
  return value;
}

void run_torture(std::size_t count, const std::function<void(std::size_t)>& body) {
  ASSERT_GE(count, 1u);
  if (count == 1) {
    body(0);
    return;
  }
  std::barrier gate(static_cast<std::ptrdiff_t>(count));
  std::vector<std::thread> threads;
  threads.reserve(count);
  for (std::size_t t = 0; t < count; ++t) {
    threads.emplace_back([&, t] {
      gate.arrive_and_wait();
      body(t);
    });
  }
  for (std::thread& thread : threads) thread.join();
}

struct Data {
  std::vector<std::vector<float>> rows;
  std::vector<int> labels;
  std::vector<std::vector<float>> queries;
};

Data make_data(std::size_t n, std::size_t dim, std::size_t num_queries,
               std::uint64_t seed) {
  Data data;
  Rng rng{seed};
  const auto sample = [&](int cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(cls * 1.1 + (i % 3) * 0.3, 0.5));
    }
    return v;
  };
  for (std::size_t r = 0; r < n; ++r) {
    const int cls = static_cast<int>(r % 3);
    data.rows.push_back(sample(cls));
    data.labels.push_back(cls);
  }
  for (std::size_t q = 0; q < num_queries; ++q) {
    data.queries.push_back(sample(static_cast<int>(q % 3)));
  }
  return data;
}

// --- Canary riding the full QueryService under mutation ---------------------

TEST(StressHealth, CanaryAccountingBalancesUnderQueryMutateTorture) {
  const Data data = make_data(64, 8, 8, 91);
  const auto index = search::make_index("cosine");
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  serve::QueryServiceConfig config;
  config.workers = 2;
  config.queue_capacity = 32;
  config.cache_capacity = 0;  // Every completion reaches the canary ticket.
  config.canary.sample_every = 1;
  config.canary.window = 32;
  config.canary.queue_capacity = 16;  // Small: the drop path joins the torture.
  serve::QueryService service(*index, config);

  const std::size_t submitters = stress_threads();
  const std::size_t iters = iterations(60);
  std::atomic<std::size_t> ok{0};

  // Thread 0 mutates through the service (exclusive lock + generation
  // bumps -> in-flight canaries go stale); the rest submit queries whose
  // completions feed the canary.
  run_torture(submitters + 1, [&](std::size_t t) {
    if (t == 0) {
      std::size_t next_erase = 0;
      for (std::size_t i = 0; i < iters / 4; ++i) {
        const std::vector<std::vector<float>> row{data.rows[i % data.rows.size()]};
        const std::vector<int> label{data.labels[i % data.labels.size()]};
        service.add(row, label);
        if (i % 2 == 0) service.erase(next_erase++);
      }
      return;
    }
    std::vector<std::future<serve::QueryResponse>> pending;
    for (std::size_t i = 0; i < iters; ++i) {
      pending.push_back(
          service.submit(data.queries[(t + i) % data.queries.size()], 1 + i % 3));
      if (pending.size() >= 8) {
        for (auto& f : pending) {
          if (f.get().status == serve::RequestStatus::kOk) ++ok;
        }
        pending.clear();
      }
    }
    for (auto& f : pending) {
      if (f.get().status == serve::RequestStatus::kOk) ++ok;
    }
  });

  service.canary_drain();
  const obs::health::CanaryReport report = service.canary_report();
  EXPECT_EQ(report.sampled, report.executed + report.stale + report.dropped)
      << "canary accounting must balance at quiescence";
  EXPECT_LE(report.sampled, ok.load()) << "only completed queries are sampled";
  EXPECT_GT(report.sampled, 0u);
  EXPECT_GE(report.recall_estimate, 0.0);
  EXPECT_LE(report.recall_estimate, 1.0);
  EXPECT_GE(report.mean_rank_displacement, 0.0);
  service.stop();
  // Enqueue after stop is a counted drop, never a hang or a crash.
  const obs::health::CanaryReport stopped = service.canary_report();
  EXPECT_EQ(stopped.sampled, stopped.executed + stopped.stale + stopped.dropped);
}

// --- Ground truth vs tombstones over a sharded index ------------------------

TEST(StressHealth, CanaryGroundTruthNeverObservesTombstonedRows) {
  const Data data = make_data(96, 8, 16, 101);
  search::EngineConfig config;
  config.bank_rows = 16;
  config.shard_workers = 2;
  const auto index = search::make_index("sharded-cosine", config);
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  // The owner's lock discipline from the serving stack: shared for canary
  // ground truth and scrubs, exclusive for erase + generation bump.
  std::shared_mutex index_mutex;  // lock-order: leaf (no lock acquired under it).
  std::atomic<std::uint64_t> generation{0};
  std::set<std::size_t> erased;  // Guarded by index_mutex.
  std::atomic<std::size_t> tombstones_seen{0};
  std::atomic<std::size_t> executed_checks{0};

  obs::health::CanaryOptions options;
  options.sample_every = 1;
  options.window = 64;
  options.queue_capacity = 256;
  obs::health::RecallCanary canary{
      options,
      [&](std::span<const float> query, std::size_t k, std::uint64_t task_generation)
          -> std::optional<std::vector<std::size_t>> {
        std::shared_lock lock(index_mutex);
        if (task_generation != generation.load()) {
          return std::nullopt;  // Stale: the eraser moved on.
        }
        std::vector<std::size_t> ids(data.rows.size());
        std::iota(ids.begin(), ids.end(), std::size_t{0});
        const search::QueryResult exact = index->query_subset(query, ids, k);
        ++executed_checks;
        for (const search::Neighbor& neighbor : exact.neighbors) {
          if (erased.count(neighbor.index) != 0) ++tombstones_seen;
        }
        std::vector<std::size_t> out;
        out.reserve(exact.neighbors.size());
        for (const search::Neighbor& neighbor : exact.neighbors) {
          out.push_back(neighbor.index);
        }
        return out;
      }};

  const std::size_t queriers = stress_threads();
  const std::size_t iters = iterations(40);

  run_torture(queriers + 1, [&](std::size_t t) {
    if (t == 0) {
      // Erase across bank boundaries, driving compaction; each erase is a
      // generation bump exactly like QueryService::erase.
      for (std::size_t i = 0; i < 48; ++i) {
        std::unique_lock lock(index_mutex);
        if (index->erase(i * 2 + 1)) {
          erased.insert(i * 2 + 1);
          generation.fetch_add(1);
        }
      }
      return;
    }
    for (std::size_t i = 0; i < iters; ++i) {
      const std::vector<float>& query = data.queries[(t + i) % data.queries.size()];
      std::vector<std::size_t> served;
      std::uint64_t served_generation = 0;
      {
        std::shared_lock lock(index_mutex);
        served_generation = generation.load();
        const search::QueryResult result = index->query_one(query, 3);
        for (const search::Neighbor& neighbor : result.neighbors) {
          served.push_back(neighbor.index);
        }
      }
      if (canary.should_sample()) {
        canary.enqueue(query, 3, std::move(served), served_generation);
      }
    }
  });

  canary.drain();
  canary.stop();
  const obs::health::CanaryReport report = canary.report();
  EXPECT_EQ(report.sampled, report.executed + report.stale + report.dropped);
  EXPECT_GT(executed_checks.load(), 0u) << "some canaries must have executed live";
  EXPECT_EQ(tombstones_seen.load(), 0u)
      << "ground truth observed erased rows - query_subset leaked a tombstone";
}

// --- Scrubbing racing add/erase/compaction ----------------------------------

TEST(StressHealth, ScrubRacesAddEraseCompactionOnShardedBanks) {
  const Data data = make_data(64, 8, 8, 111);
  search::EngineConfig config;
  config.bank_rows = 16;
  config.shard_workers = 2;
  const auto index = search::make_index("sharded-mcam2", config);
  index->calibrate(data.rows);
  index->add(data.rows, data.labels);

  std::shared_mutex index_mutex;  // lock-order: leaf (no lock acquired under it).

  // A periodic monitor sweeps in the background through the same shared
  // lock while torture threads scrub synchronously and one thread
  // mutates; every published bank must be internally consistent (a torn
  // row read would break these inequalities long before TSan flags it).
  obs::health::MonitorOptions monitor_options;
  monitor_options.scrub_period = std::chrono::milliseconds{1};
  obs::health::HealthMonitor monitor{monitor_options, [&] {
                                       std::shared_lock lock(index_mutex);
                                       return obs::health::scrub_index(*index);
                                     }};

  const auto check_banks = [](const std::vector<obs::health::BankHealth>& banks) {
    for (const obs::health::BankHealth& bank : banks) {
      ASSERT_FALSE(bank.bank.empty());
      ASSERT_LE(bank.mismatched_cells + bank.faulty_cells, bank.cells);
      ASSERT_GE(bank.drift_score, 0.0);
      ASSERT_LE(bank.drift_score, 1.0);
      ASSERT_GE(bank.max_abs_shift_v, 0.0);
      ASSERT_GE(bank.mean_abs_shift_v, 0.0);
      ASSERT_LE(bank.mean_abs_shift_v, bank.max_abs_shift_v + 1e-12);
    }
  };

  const std::size_t scrubbers = stress_threads();
  const std::size_t iters = iterations(20);

  run_torture(scrubbers + 1, [&](std::size_t t) {
    if (t == 0) {
      for (std::size_t i = 0; i < iters; ++i) {
        std::unique_lock lock(index_mutex);
        const std::vector<std::vector<float>> row{data.rows[i % data.rows.size()]};
        const std::vector<int> label{data.labels[i % data.labels.size()]};
        index->add(row, label);
        (void)index->erase(i * 3 + 1);  // Drives bank compaction cycles.
      }
      return;
    }
    for (std::size_t i = 0; i < iters; ++i) {
      std::vector<obs::health::BankHealth> banks;
      {
        std::shared_lock lock(index_mutex);
        banks = obs::health::scrub_index(*index);
      }
      check_banks(banks);
    }
  });

  monitor.stop();
  const obs::health::HealthReport report = monitor.report();
  check_banks(report.banks);
  EXPECT_EQ(report.drift_alarms, 0u) << "no drift was injected";
  // Final sweep at quiescence: every bank clean and fully live.
  std::size_t live_rows = 0;
  for (const obs::health::BankHealth& bank : obs::health::scrub_index(*index)) {
    EXPECT_EQ(bank.mismatched_cells, 0u);
    live_rows += bank.rows;
  }
  EXPECT_EQ(live_rows, index->size());
}

#endif  // MCAM_OBS_DISABLED

}  // namespace
}  // namespace mcam
