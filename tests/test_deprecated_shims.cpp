// The deprecated NnEngine shims (fit / predict) must keep compiling and
// behaving until downstream callers finish migrating. This is the ONE
// translation unit allowed to call them: every other suite builds with
// -Werror=deprecated-declarations (see CMakeLists.txt), so a new use of
// the legacy interface anywhere else fails the build, while the shims'
// behavior stays pinned here.
#include "search/engine.hpp"
#include "search/factory.hpp"
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <string>
#include <type_traits>
#include <vector>

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace mcam::search {
namespace {

struct Blobs {
  std::vector<std::vector<float>> train;
  std::vector<int> train_labels;
  std::vector<std::vector<float>> queries;
};

Blobs make_blobs(std::size_t per_class, std::size_t classes, std::size_t dim,
                 double sigma, std::uint64_t seed) {
  Blobs blobs;
  Rng rng{seed};
  const auto sample = [&](std::size_t cls) {
    std::vector<float> v(dim);
    for (std::size_t i = 0; i < dim; ++i) {
      v[i] = static_cast<float>(rng.normal(static_cast<double>(cls) * 2.0, sigma));
    }
    return v;
  };
  for (std::size_t cls = 0; cls < classes; ++cls) {
    for (std::size_t i = 0; i < per_class; ++i) {
      blobs.train.push_back(sample(cls));
      blobs.train_labels.push_back(static_cast<int>(cls));
      blobs.queries.push_back(sample(cls));
    }
  }
  return blobs;
}

TEST(NnIndexLegacyShims, FitAndPredictStillWork) {
  const Blobs blobs = make_blobs(6, 2, 8, 0.4, 61);
  McamNnEngine engine{};
  engine.fit(blobs.train, blobs.train_labels);
  EXPECT_EQ(engine.size(), blobs.train.size());
  // fit = clear + add: a second fit replaces, not extends.
  engine.fit(blobs.train, blobs.train_labels);
  EXPECT_EQ(engine.size(), blobs.train.size());
  for (const auto& q : blobs.queries) {
    EXPECT_EQ(engine.predict(q), engine.query_one(q, 1).label);
  }
}

TEST(NnIndexLegacyShims, PredictMatchesTopOneForEveryBackend) {
  // The predict shim must stay consistent with the top-1 query for every
  // registered backend until it is removed.
  const Blobs blobs = make_blobs(5, 2, 6, 0.5, 67);
  for (const std::string& name : EngineFactory::instance().registered_names()) {
    EngineConfig config;
    config.num_features = 6;
    config.bank_rows = name.rfind("sharded-", 0) == 0 ? 8 : 0;
    if (name == "refine") config.fine_spec = "euclidean";
    auto index = make_index(name, config);
    index->add(blobs.train, blobs.train_labels);
    for (const auto& q : blobs.queries) {
      EXPECT_EQ(index->predict(q), index->query_one(q, 1).label) << name;
    }
  }
}

TEST(NnIndexLegacyShims, NnEngineAliasStillNamesTheInterface) {
  static_assert(std::is_same_v<NnEngine, NnIndex>);
  SUCCEED();
}

}  // namespace
}  // namespace mcam::search

#pragma GCC diagnostic pop
